//! Recursive-descent parser for Cephalo.

use crate::ast::{BinOp, Block, Expr, Stmt, TableItem, UnOp};
use crate::lexer::{Tok, Token};

/// A syntax error with the line it occurred on.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a token stream (as produced by [`crate::lexer::lex`]) into a
/// top-level block.
///
/// # Errors
///
/// Returns the first syntax error encountered.
pub fn parse(tokens: &[Token]) -> Result<Block, ParseError> {
    let mut p = Parser {
        tokens,
        pos: 0,
        depth: 0,
    };
    let block = p.block(&[Tok::Eof])?;
    p.expect(&Tok::Eof)?;
    Ok(block)
}

/// Hard cap on parser recursion. Policies are machine-shipped strings, so
/// a hostile or buggy generator can nest arbitrarily deep; without a cap
/// the recursive-descent parser overflows the thread stack (an abort, not
/// a catchable error) long before the interpreter's own instruction
/// budget can intervene.
const MAX_DEPTH: usize = 200;

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn line(&self) -> u32 {
        self.tokens[self.pos.min(self.tokens.len() - 1)].line
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)]
            .kind
            .clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            line: self.line(),
            message: message.into(),
        })
    }

    fn expect(&mut self, kind: &Tok) -> Result<(), ParseError> {
        if self.peek() == kind {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {kind:?}, found {:?}", self.peek()))
        }
    }

    fn accept(&mut self, kind: &Tok) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn name(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Tok::Name(n) => Ok(n),
            other => self.err(format!("expected a name, found {other:?}")),
        }
    }

    /// Parses statements until one of `terminators` is the lookahead.
    fn block(&mut self, terminators: &[Tok]) -> Result<Block, ParseError> {
        let mut stmts = Vec::new();
        loop {
            while self.accept(&Tok::Semi) {}
            if terminators.contains(self.peek()) {
                return Ok(stmts);
            }
            stmts.push(self.statement()?);
        }
    }

    fn statement(&mut self) -> Result<Stmt, ParseError> {
        self.descend()?;
        let r = self.statement_inner();
        self.depth -= 1;
        r
    }

    /// Bumps the nesting depth, rejecting input past [`MAX_DEPTH`]. Every
    /// recursion cycle in the grammar passes through [`Self::statement`],
    /// [`Self::binary`], or [`Self::unary`], so guarding those three
    /// bounds the stack.
    fn descend(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return self.err(format!("nesting deeper than {MAX_DEPTH} levels"));
        }
        Ok(())
    }

    fn statement_inner(&mut self) -> Result<Stmt, ParseError> {
        match self.peek().clone() {
            Tok::Local => {
                self.bump();
                let name = self.name()?;
                self.expect(&Tok::Assign)?;
                let value = self.expr()?;
                Ok(Stmt::Local(name, value))
            }
            Tok::If => self.if_stmt(),
            Tok::While => {
                self.bump();
                let cond = self.expr()?;
                self.expect(&Tok::Do)?;
                let body = self.block(&[Tok::End])?;
                self.expect(&Tok::End)?;
                Ok(Stmt::While(cond, body))
            }
            Tok::Repeat => {
                self.bump();
                let body = self.block(&[Tok::Until])?;
                self.expect(&Tok::Until)?;
                let cond = self.expr()?;
                Ok(Stmt::Repeat(body, cond))
            }
            Tok::For => self.for_stmt(),
            Tok::Function => {
                self.bump();
                let name = self.name()?;
                let (params, body) = self.func_rest()?;
                Ok(Stmt::FuncDecl { name, params, body })
            }
            Tok::Return => {
                self.bump();
                let value = if matches!(
                    self.peek(),
                    Tok::End | Tok::Eof | Tok::Else | Tok::Elseif | Tok::Until | Tok::Semi
                ) {
                    None
                } else {
                    Some(self.expr()?)
                };
                Ok(Stmt::Return(value))
            }
            Tok::Break => {
                self.bump();
                Ok(Stmt::Break)
            }
            _ => self.expr_or_assign(),
        }
    }

    fn if_stmt(&mut self) -> Result<Stmt, ParseError> {
        self.expect(&Tok::If)?;
        let mut arms = Vec::new();
        let cond = self.expr()?;
        self.expect(&Tok::Then)?;
        let body = self.block(&[Tok::Elseif, Tok::Else, Tok::End])?;
        arms.push((cond, body));
        let mut else_blk = None;
        loop {
            match self.peek() {
                Tok::Elseif => {
                    self.bump();
                    let cond = self.expr()?;
                    self.expect(&Tok::Then)?;
                    let body = self.block(&[Tok::Elseif, Tok::Else, Tok::End])?;
                    arms.push((cond, body));
                }
                Tok::Else => {
                    self.bump();
                    else_blk = Some(self.block(&[Tok::End])?);
                    self.expect(&Tok::End)?;
                    break;
                }
                Tok::End => {
                    self.bump();
                    break;
                }
                other => return self.err(format!("expected elseif/else/end, found {other:?}")),
            }
        }
        Ok(Stmt::If(arms, else_blk))
    }

    fn for_stmt(&mut self) -> Result<Stmt, ParseError> {
        self.expect(&Tok::For)?;
        let first = self.name()?;
        match self.peek() {
            Tok::Assign => {
                self.bump();
                let start = self.expr()?;
                self.expect(&Tok::Comma)?;
                let stop = self.expr()?;
                let step = if self.accept(&Tok::Comma) {
                    Some(self.expr()?)
                } else {
                    None
                };
                self.expect(&Tok::Do)?;
                let body = self.block(&[Tok::End])?;
                self.expect(&Tok::End)?;
                Ok(Stmt::NumFor {
                    var: first,
                    start,
                    stop,
                    step,
                    body,
                })
            }
            Tok::Comma => {
                self.bump();
                let value = self.name()?;
                self.expect(&Tok::In)?;
                let iter = self.expr()?;
                self.expect(&Tok::Do)?;
                let body = self.block(&[Tok::End])?;
                self.expect(&Tok::End)?;
                Ok(Stmt::GenFor {
                    key: first,
                    value,
                    iter,
                    body,
                })
            }
            other => self.err(format!("expected `=` or `,` in for, found {other:?}")),
        }
    }

    fn func_rest(&mut self) -> Result<(Vec<String>, Block), ParseError> {
        self.expect(&Tok::LParen)?;
        let mut params = Vec::new();
        if !self.accept(&Tok::RParen) {
            loop {
                params.push(self.name()?);
                if !self.accept(&Tok::Comma) {
                    break;
                }
            }
            self.expect(&Tok::RParen)?;
        }
        let body = self.block(&[Tok::End])?;
        self.expect(&Tok::End)?;
        Ok((params, body))
    }

    fn expr_or_assign(&mut self) -> Result<Stmt, ParseError> {
        let e = self.expr()?;
        if self.accept(&Tok::Assign) {
            match e {
                Expr::Var(_) | Expr::Index(_, _) => {
                    let rhs = self.expr()?;
                    Ok(Stmt::Assign(e, rhs))
                }
                _ => self.err("invalid assignment target"),
            }
        } else {
            match e {
                Expr::Call(_, _) => Ok(Stmt::ExprStmt(e)),
                _ => self.err("expression statements must be calls"),
            }
        }
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.binary(0)
    }

    fn bin_op(&self) -> Option<BinOp> {
        Some(match self.peek() {
            Tok::Or => BinOp::Or,
            Tok::And => BinOp::And,
            Tok::Eq => BinOp::Eq,
            Tok::Ne => BinOp::Ne,
            Tok::Lt => BinOp::Lt,
            Tok::Le => BinOp::Le,
            Tok::Gt => BinOp::Gt,
            Tok::Ge => BinOp::Ge,
            Tok::Concat => BinOp::Concat,
            Tok::Plus => BinOp::Add,
            Tok::Minus => BinOp::Sub,
            Tok::Star => BinOp::Mul,
            Tok::Slash => BinOp::Div,
            Tok::Percent => BinOp::Mod,
            Tok::Caret => BinOp::Pow,
            _ => return None,
        })
    }

    fn binary(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        self.descend()?;
        let r = self.binary_inner(min_prec);
        self.depth -= 1;
        r
    }

    fn binary_inner(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        while let Some(op) = self.bin_op() {
            let prec = op.precedence();
            if prec < min_prec {
                break;
            }
            self.bump();
            let next_min = if op.right_assoc() { prec } else { prec + 1 };
            let rhs = self.binary(next_min)?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        self.descend()?;
        let r = self.unary_inner();
        self.depth -= 1;
        r
    }

    fn unary_inner(&mut self) -> Result<Expr, ParseError> {
        // Unary binds tighter than every binary operator except `^`.
        match self.peek() {
            Tok::Minus => {
                self.bump();
                Ok(Expr::Un(UnOp::Neg, Box::new(self.unary()?)))
            }
            Tok::Not => {
                self.bump();
                Ok(Expr::Un(UnOp::Not, Box::new(self.unary()?)))
            }
            Tok::Hash => {
                self.bump();
                Ok(Expr::Un(UnOp::Len, Box::new(self.unary()?)))
            }
            _ => self.postfix(),
        }
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        loop {
            match self.peek() {
                Tok::Dot => {
                    self.bump();
                    let field = self.name()?;
                    e = Expr::Index(Box::new(e), Box::new(Expr::Str(field)));
                }
                Tok::LBracket => {
                    self.bump();
                    let idx = self.expr()?;
                    self.expect(&Tok::RBracket)?;
                    e = Expr::Index(Box::new(e), Box::new(idx));
                }
                Tok::LParen => {
                    // Lua's classic ambiguity: `a = b` followed by a line
                    // starting with `(` must not parse as a call `b(...)`.
                    // Require the call parenthesis on the same line as the
                    // callee's last token.
                    if self.pos > 0 && self.tokens[self.pos].line != self.tokens[self.pos - 1].line
                    {
                        return Ok(e);
                    }
                    self.bump();
                    let mut args = Vec::new();
                    if !self.accept(&Tok::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.accept(&Tok::Comma) {
                                break;
                            }
                        }
                        self.expect(&Tok::RParen)?;
                    }
                    e = Expr::Call(Box::new(e), args);
                }
                _ => return Ok(e),
            }
        }
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.bump() {
            Tok::Nil => Ok(Expr::Nil),
            Tok::True => Ok(Expr::Bool(true)),
            Tok::False => Ok(Expr::Bool(false)),
            Tok::Num(n) => Ok(Expr::Num(n)),
            Tok::Str(s) => Ok(Expr::Str(s)),
            Tok::Name(n) => Ok(Expr::Var(n)),
            Tok::LParen => {
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Tok::Function => {
                let (params, body) = self.func_rest()?;
                Ok(Expr::Lambda(params, body))
            }
            Tok::LBrace => self.table_lit(),
            other => self.err(format!("unexpected token {other:?} in expression")),
        }
    }

    fn table_lit(&mut self) -> Result<Expr, ParseError> {
        let mut items = Vec::new();
        if self.accept(&Tok::RBrace) {
            return Ok(Expr::TableLit(items));
        }
        loop {
            // `name = value` only counts as a named entry when followed by
            // `=`; otherwise `name` is a positional variable reference.
            let item = if let Tok::Name(n) = self.peek().clone() {
                if self.tokens.get(self.pos + 1).map(|t| &t.kind) == Some(&Tok::Assign) {
                    self.bump();
                    self.bump();
                    TableItem::Named(n, self.expr()?)
                } else {
                    TableItem::Positional(self.expr()?)
                }
            } else {
                TableItem::Positional(self.expr()?)
            };
            items.push(item);
            if !self.accept(&Tok::Comma) {
                break;
            }
            if self.peek() == &Tok::RBrace {
                break; // trailing comma
            }
        }
        self.expect(&Tok::RBrace)?;
        Ok(Expr::TableLit(items))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn p(src: &str) -> Block {
        parse(&lex(src).unwrap()).unwrap()
    }

    fn perr(src: &str) -> ParseError {
        parse(&lex(src).unwrap()).unwrap_err()
    }

    #[test]
    fn parses_local_and_assign() {
        let b = p("local x = 1\nx = x + 1");
        assert_eq!(b.len(), 2);
        assert!(matches!(&b[0], Stmt::Local(n, _) if n == "x"));
        assert!(matches!(&b[1], Stmt::Assign(Expr::Var(_), _)));
    }

    #[test]
    fn precedence_mul_over_add() {
        let b = p("x = 1 + 2 * 3");
        let Stmt::Assign(_, e) = &b[0] else { panic!() };
        assert_eq!(e.to_string(), "(1 + (2 * 3))");
    }

    #[test]
    fn concat_is_right_assoc() {
        let b = p("x = \"a\" .. \"b\" .. \"c\"");
        let Stmt::Assign(_, e) = &b[0] else { panic!() };
        assert_eq!(e.to_string(), "(\"a\" .. (\"b\" .. \"c\"))");
    }

    #[test]
    fn comparison_and_logic() {
        let b = p("x = a < b and c >= d or not e");
        let Stmt::Assign(_, e) = &b[0] else { panic!() };
        assert_eq!(e.to_string(), "(((a < b) and (c >= d)) or (not e))");
    }

    #[test]
    fn if_elseif_else() {
        let b = p("if a then x = 1 elseif b then x = 2 else x = 3 end");
        let Stmt::If(arms, else_blk) = &b[0] else {
            panic!()
        };
        assert_eq!(arms.len(), 2);
        assert!(else_blk.is_some());
    }

    #[test]
    fn numeric_for_with_step() {
        let b = p("for i = 1, 10, 2 do break end");
        assert!(matches!(&b[0], Stmt::NumFor { step: Some(_), .. }));
    }

    #[test]
    fn generic_for() {
        let b = p("for k, v in t do print(k, v) end");
        assert!(matches!(&b[0], Stmt::GenFor { .. }));
    }

    #[test]
    fn function_decl_and_call() {
        let b = p("function f(a, b) return a + b end\nf(1, 2)");
        assert!(matches!(&b[0], Stmt::FuncDecl { name, params, .. }
            if name == "f" && params.len() == 2));
        assert!(matches!(&b[1], Stmt::ExprStmt(Expr::Call(_, args)) if args.len() == 2));
    }

    #[test]
    fn table_literal_mixed() {
        let b = p("t = {1, 2, name = \"x\", nested = {}}");
        let Stmt::Assign(_, Expr::TableLit(items)) = &b[0] else {
            panic!()
        };
        assert_eq!(items.len(), 4);
    }

    #[test]
    fn table_positional_name_not_confused_with_named() {
        let b = p("t = {x, y}");
        let Stmt::Assign(_, Expr::TableLit(items)) = &b[0] else {
            panic!()
        };
        assert!(matches!(items[0], TableItem::Positional(Expr::Var(_))));
    }

    #[test]
    fn chained_postfix() {
        let b = p("x = t.a[1].b(2)(3)");
        let Stmt::Assign(_, e) = &b[0] else { panic!() };
        assert_eq!(e.to_string(), "t.a[1].b(2)(3)");
    }

    #[test]
    fn repeat_until() {
        let b = p("repeat x = x - 1 until x <= 0");
        assert!(matches!(&b[0], Stmt::Repeat(body, _) if body.len() == 1));
    }

    #[test]
    fn unary_precedence() {
        let b = p("x = -a + #b");
        let Stmt::Assign(_, e) = &b[0] else { panic!() };
        assert_eq!(e.to_string(), "((-a) + (#b))");
    }

    #[test]
    fn errors_carry_lines() {
        let e = perr("x = 1\ny = ");
        assert_eq!(e.line, 2);
    }

    #[test]
    fn rejects_bad_assignment_target() {
        assert!(perr("1 = 2").message.contains("assignment"));
        assert!(perr("f() = 2").message.contains("assignment"));
    }

    #[test]
    fn rejects_non_call_expression_statement() {
        assert!(perr("x + 1").message.contains("calls"));
    }

    #[test]
    fn lambda_expression() {
        let b = p("f = function(x) return x end");
        assert!(matches!(&b[0], Stmt::Assign(_, Expr::Lambda(p, _)) if p.len() == 1));
    }

    #[test]
    fn pow_right_assoc() {
        let b = p("x = 2 ^ 3 ^ 2");
        let Stmt::Assign(_, e) = &b[0] else { panic!() };
        assert_eq!(e.to_string(), "(2 ^ (3 ^ 2))");
    }

    #[test]
    fn trailing_comma_in_table() {
        let b = p("t = {1, 2,}");
        let Stmt::Assign(_, Expr::TableLit(items)) = &b[0] else {
            panic!()
        };
        assert_eq!(items.len(), 2);
    }
}
