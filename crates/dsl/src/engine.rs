//! Engine selection for Cephalo consumers.
//!
//! Both engines expose the same surface (load/call/globals/output/sandbox)
//! over the same `Value` ABI; [`DslEngine`] lets embedding code — Mantle
//! policy evaluation, scripted object classes — pick one at construction
//! time without branching at every call site. The bytecode VM is the
//! default; the tree-walking interpreter remains available as the
//! reference implementation (and as the oracle for differential testing).

use std::any::Any;

use crate::interp::{Interp, RtError, Sandbox};
use crate::value::{NativeFn, Value};
use crate::vm::Vm;
use crate::Script;

/// Which execution engine to embed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// The tree-walking interpreter: reference semantics.
    TreeWalk,
    /// The bytecode compiler + stack VM: the hot-path default.
    #[default]
    Bytecode,
}

/// A Cephalo execution engine: either the reference interpreter or the
/// bytecode VM, behind one API.
pub enum DslEngine {
    /// Tree-walking reference interpreter.
    Tree(Interp),
    /// Bytecode stack VM.
    Vm(Vm),
}

impl Default for DslEngine {
    fn default() -> Self {
        DslEngine::new(EngineKind::default())
    }
}

impl DslEngine {
    /// Creates an engine of `kind` with the default sandbox.
    pub fn new(kind: EngineKind) -> DslEngine {
        DslEngine::with_sandbox(kind, Sandbox::default())
    }

    /// Creates an engine of `kind` with explicit sandbox limits.
    pub fn with_sandbox(kind: EngineKind, sandbox: Sandbox) -> DslEngine {
        match kind {
            EngineKind::TreeWalk => DslEngine::Tree(Interp::with_sandbox(sandbox)),
            EngineKind::Bytecode => DslEngine::Vm(Vm::with_sandbox(sandbox)),
        }
    }

    /// Which engine this is.
    pub fn kind(&self) -> EngineKind {
        match self {
            DslEngine::Tree(_) => EngineKind::TreeWalk,
            DslEngine::Vm(_) => EngineKind::Bytecode,
        }
    }

    /// Registers a native function under a global name.
    pub fn register(&mut self, name: &str, f: NativeFn) {
        match self {
            DslEngine::Tree(i) => i.register(name, f),
            DslEngine::Vm(v) => v.register(name, f),
        }
    }

    /// Sets a global variable.
    pub fn set_global(&mut self, name: &str, v: Value) {
        match self {
            DslEngine::Tree(i) => i.set_global(name, v),
            DslEngine::Vm(m) => m.set_global(name, v),
        }
    }

    /// Reads a global variable (`nil` if unset).
    pub fn global(&self, name: &str) -> Value {
        match self {
            DslEngine::Tree(i) => i.global(name),
            DslEngine::Vm(v) => v.global(name),
        }
    }

    /// Lines produced by `print`/`log` since the last take.
    pub fn take_output(&mut self) -> Vec<String> {
        match self {
            DslEngine::Tree(i) => i.take_output(),
            DslEngine::Vm(v) => v.take_output(),
        }
    }

    /// Whether a global function named `name` exists.
    pub fn has_function(&self, name: &str) -> bool {
        match self {
            DslEngine::Tree(i) => i.has_function(name),
            DslEngine::Vm(v) => v.has_function(name),
        }
    }

    /// Executes a script's top level without host state.
    ///
    /// # Errors
    ///
    /// Propagates any runtime error, including sandbox violations.
    pub fn load(&mut self, script: &Script) -> Result<(), RtError> {
        self.load_with(script, &mut ())
    }

    /// Executes a script's top level with host state available to natives.
    ///
    /// # Errors
    ///
    /// Propagates any runtime error, including sandbox violations.
    pub fn load_with(&mut self, script: &Script, host: &mut dyn Any) -> Result<(), RtError> {
        match self {
            DslEngine::Tree(i) => i.load_with(script, host),
            DslEngine::Vm(v) => v.load_with(script, host),
        }
    }

    /// Calls the global function `name` with `args`.
    ///
    /// # Errors
    ///
    /// Fails if the global is not callable or the call raises.
    pub fn call(
        &mut self,
        name: &str,
        args: &[Value],
        host: &mut dyn Any,
    ) -> Result<Value, RtError> {
        match self {
            DslEngine::Tree(i) => i.call(name, args, host),
            DslEngine::Vm(v) => v.call(name, args, host),
        }
    }

    /// Calls an arbitrary callable value.
    ///
    /// # Errors
    ///
    /// Fails if `f` is not callable or the call raises.
    pub fn call_value(
        &mut self,
        f: &Value,
        args: Vec<Value>,
        host: &mut dyn Any,
    ) -> Result<Value, RtError> {
        match self {
            DslEngine::Tree(i) => i.call_value(f, args, host),
            DslEngine::Vm(v) => v.call_value(f, args, host),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_engines_run_the_same_script() {
        let script =
            Script::compile("function pick(a, b) if a < b then return a end return b end").unwrap();
        for kind in [EngineKind::TreeWalk, EngineKind::Bytecode] {
            let mut eng = DslEngine::new(kind);
            assert_eq!(eng.kind(), kind);
            eng.load(&script).unwrap();
            assert!(eng.has_function("pick"));
            let out = eng
                .call("pick", &[Value::from(4.0), Value::from(7.0)], &mut ())
                .unwrap();
            assert_eq!(out, Value::from(4.0));
        }
    }

    #[test]
    fn default_engine_is_bytecode() {
        assert_eq!(DslEngine::default().kind(), EngineKind::Bytecode);
        assert_eq!(EngineKind::default(), EngineKind::Bytecode);
    }
}
