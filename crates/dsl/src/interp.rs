//! Tree-walking interpreter with deterministic sandboxing.

use std::any::Any;
use std::rc::Rc;

use crate::ast::{BinOp, Block, Expr, Stmt, TableItem, UnOp};
use crate::value::{fmt_num, Function, HostCtx, Key, Native, NativeFn, Scope, Table, Value};
use crate::Script;

/// A runtime error raised during script execution.
#[derive(Debug, Clone, PartialEq)]
pub struct RtError {
    /// Human-readable description.
    pub message: String,
}

impl RtError {
    /// Builds an error from a message.
    pub fn new(message: impl Into<String>) -> RtError {
        RtError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for RtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "runtime error: {}", self.message)
    }
}

impl std::error::Error for RtError {}

/// Execution limits enforced per [`Interp::load`] / [`Interp::call`].
///
/// The paper notes that the Lua runtime's "flexibility ... allows execution
/// sandboxing in order to address security and performance concerns"; here
/// that is an instruction budget and a call-depth limit, both deterministic.
#[derive(Debug, Clone, Copy)]
pub struct Sandbox {
    /// Maximum AST evaluation steps per entry point.
    pub max_steps: u64,
    /// Maximum nested script-function call depth.
    pub max_depth: u32,
}

impl Default for Sandbox {
    fn default() -> Self {
        Sandbox {
            max_steps: 2_000_000,
            max_depth: 128,
        }
    }
}

/// Control flow signal threaded through statement execution.
enum Flow {
    Normal,
    Break,
    Return(Value),
}

/// A Cephalo interpreter instance.
///
/// One interpreter corresponds to one embedded VM inside a daemon: it owns a
/// global scope, a set of registered native functions, an output buffer for
/// `print`/`log`, and the sandbox limits.
pub struct Interp {
    globals: Rc<Scope>,
    sandbox: Sandbox,
    output: Vec<String>,
    steps_left: u64,
    depth: u32,
}

impl Default for Interp {
    fn default() -> Self {
        Self::new()
    }
}

impl Interp {
    /// Creates an interpreter with the default sandbox and standard library.
    pub fn new() -> Interp {
        Interp::with_sandbox(Sandbox::default())
    }

    /// Creates an interpreter with explicit sandbox limits.
    pub fn with_sandbox(sandbox: Sandbox) -> Interp {
        let mut interp = Interp {
            globals: Scope::root(),
            sandbox,
            output: Vec::new(),
            steps_left: 0,
            depth: 0,
        };
        crate::stdlib::install(&mut interp);
        interp
    }

    /// Registers a native function under a global name.
    pub fn register(&mut self, name: &str, f: NativeFn) {
        self.globals.declare(
            name,
            Value::Native(Rc::new(Native {
                name: name.to_string(),
                f,
            })),
        );
    }

    /// Sets a global variable.
    pub fn set_global(&mut self, name: &str, v: Value) {
        self.globals.declare(name, v);
    }

    /// Reads a global variable (`nil` if unset).
    pub fn global(&self, name: &str) -> Value {
        self.globals.get(name)
    }

    /// Lines produced by `print`/`log` since the last [`Interp::take_output`].
    pub fn take_output(&mut self) -> Vec<String> {
        std::mem::take(&mut self.output)
    }

    /// Executes a script's top level (typically declaring functions) without
    /// host state.
    ///
    /// # Errors
    ///
    /// Propagates any runtime error, including sandbox violations.
    pub fn load(&mut self, script: &Script) -> Result<(), RtError> {
        self.load_with(script, &mut ())
    }

    /// Executes a script's top level with host state available to natives.
    pub fn load_with(&mut self, script: &Script, host: &mut dyn Any) -> Result<(), RtError> {
        self.steps_left = self.sandbox.max_steps;
        self.depth = 0;
        let env = Rc::clone(&self.globals);
        self.exec_block(&script.block, &env, host)?;
        Ok(())
    }

    /// Whether a global function named `name` exists.
    pub fn has_function(&self, name: &str) -> bool {
        matches!(
            self.globals.get(name),
            Value::Func(_) | Value::Closure(_) | Value::Native { .. }
        )
    }

    /// Calls the global function `name` with `args`, giving natives access
    /// to `host`.
    ///
    /// # Errors
    ///
    /// Fails if the global is not callable or the call raises.
    pub fn call(
        &mut self,
        name: &str,
        args: &[Value],
        host: &mut dyn Any,
    ) -> Result<Value, RtError> {
        let f = self.globals.get(name);
        if matches!(f, Value::Nil) {
            return Err(RtError::new(format!("no such function `{name}`")));
        }
        self.steps_left = self.sandbox.max_steps;
        self.depth = 0;
        self.call_value(&f, args.to_vec(), host)
    }

    /// Calls an arbitrary callable value (used for callbacks stored in
    /// tables, e.g. Mantle's `when()` policies).
    pub fn call_value(
        &mut self,
        f: &Value,
        args: Vec<Value>,
        host: &mut dyn Any,
    ) -> Result<Value, RtError> {
        match f {
            Value::Func(func) => {
                if self.depth >= self.sandbox.max_depth {
                    return Err(RtError::new("call depth limit exceeded"));
                }
                self.depth += 1;
                let env = Scope::child(&func.env);
                for (i, p) in func.params.iter().enumerate() {
                    env.declare(p, args.get(i).cloned().unwrap_or(Value::Nil));
                }
                let flow = self.exec_block(&func.body, &env, host)?;
                self.depth -= 1;
                Ok(match flow {
                    Flow::Return(v) => v,
                    _ => Value::Nil,
                })
            }
            Value::Native(n) => {
                let mut ctx = HostCtx {
                    host,
                    output: &mut self.output,
                };
                (n.f)(&mut ctx, &args)
            }
            Value::Closure(_) => Err(RtError::new(
                "attempt to call a bytecode closure from the tree-walking interpreter",
            )),
            other => Err(RtError::new(format!(
                "attempt to call a {} value",
                other.type_name()
            ))),
        }
    }

    fn tick(&mut self) -> Result<(), RtError> {
        if self.steps_left == 0 {
            return Err(RtError::new("instruction budget exceeded"));
        }
        self.steps_left -= 1;
        Ok(())
    }

    fn exec_block(
        &mut self,
        block: &Block,
        env: &Rc<Scope>,
        host: &mut dyn Any,
    ) -> Result<Flow, RtError> {
        for stmt in block {
            match self.exec_stmt(stmt, env, host)? {
                Flow::Normal => {}
                flow => return Ok(flow),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(
        &mut self,
        stmt: &Stmt,
        env: &Rc<Scope>,
        host: &mut dyn Any,
    ) -> Result<Flow, RtError> {
        self.tick()?;
        match stmt {
            Stmt::Local(name, e) => {
                let v = self.eval(e, env, host)?;
                env.declare(name, v);
                Ok(Flow::Normal)
            }
            Stmt::Assign(lhs, rhs) => {
                let v = self.eval(rhs, env, host)?;
                match lhs {
                    Expr::Var(name) => env.set(name, v),
                    Expr::Index(base, idx) => {
                        let base_v = self.eval(base, env, host)?;
                        let idx_v = self.eval(idx, env, host)?;
                        let key = to_key(&idx_v)?;
                        match base_v {
                            Value::Table(t) => t.borrow_mut().set(key, v),
                            other => {
                                return Err(RtError::new(format!(
                                    "attempt to index a {} value",
                                    other.type_name()
                                )))
                            }
                        }
                    }
                    _ => return Err(RtError::new("invalid assignment target")),
                }
                Ok(Flow::Normal)
            }
            Stmt::ExprStmt(e) => {
                self.eval(e, env, host)?;
                Ok(Flow::Normal)
            }
            Stmt::If(arms, else_blk) => {
                for (cond, body) in arms {
                    if self.eval(cond, env, host)?.truthy() {
                        let scope = Scope::child(env);
                        return self.exec_block(body, &scope, host);
                    }
                }
                if let Some(body) = else_blk {
                    let scope = Scope::child(env);
                    return self.exec_block(body, &scope, host);
                }
                Ok(Flow::Normal)
            }
            Stmt::While(cond, body) => {
                while self.eval(cond, env, host)?.truthy() {
                    self.tick()?;
                    let scope = Scope::child(env);
                    match self.exec_block(body, &scope, host)? {
                        Flow::Normal => {}
                        Flow::Break => break,
                        ret @ Flow::Return(_) => return Ok(ret),
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Repeat(body, cond) => {
                loop {
                    self.tick()?;
                    let scope = Scope::child(env);
                    match self.exec_block(body, &scope, host)? {
                        Flow::Normal => {}
                        Flow::Break => break,
                        ret @ Flow::Return(_) => return Ok(ret),
                    }
                    if self.eval(cond, &scope, host)?.truthy() {
                        break;
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::NumFor {
                var,
                start,
                stop,
                step,
                body,
            } => {
                let start_v = self.eval_owned(start, env, host)?;
                let start = self.num(start_v)?;
                let stop_v = self.eval_owned(stop, env, host)?;
                let stop = self.num(stop_v)?;
                let step = match step {
                    Some(e) => {
                        let v = self.eval_owned(e, env, host)?;
                        self.num(v)?
                    }
                    None => 1.0,
                };
                if step == 0.0 {
                    return Err(RtError::new("for loop step is zero"));
                }
                let mut i = start;
                while (step > 0.0 && i <= stop) || (step < 0.0 && i >= stop) {
                    self.tick()?;
                    let scope = Scope::child(env);
                    scope.declare(var, Value::Num(i));
                    match self.exec_block(body, &scope, host)? {
                        Flow::Normal => {}
                        Flow::Break => break,
                        ret @ Flow::Return(_) => return Ok(ret),
                    }
                    i += step;
                }
                Ok(Flow::Normal)
            }
            Stmt::GenFor {
                key,
                value,
                iter,
                body,
            } => {
                let table = match self.eval(iter, env, host)? {
                    Value::Table(t) => t,
                    other => {
                        return Err(RtError::new(format!(
                            "attempt to iterate a {} value",
                            other.type_name()
                        )))
                    }
                };
                // Snapshot entries so the body may mutate the table.
                let entries: Vec<(Key, Value)> = table.borrow().iter().collect();
                for (k, v) in entries {
                    self.tick()?;
                    let scope = Scope::child(env);
                    let key_val = match k {
                        Key::Int(i) => Value::Num(i as f64),
                        Key::Str(s) => Value::str(s),
                    };
                    scope.declare(key, key_val);
                    scope.declare(value, v);
                    match self.exec_block(body, &scope, host)? {
                        Flow::Normal => {}
                        Flow::Break => break,
                        ret @ Flow::Return(_) => return Ok(ret),
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::FuncDecl { name, params, body } => {
                let func = Value::Func(Rc::new(Function {
                    params: params.clone(),
                    body: body.clone(),
                    env: Rc::clone(env),
                    name: name.clone(),
                }));
                // Function declarations are global, as in the paper's
                // balancer scripts (callbacks looked up by name).
                self.globals.declare(name, func);
                Ok(Flow::Normal)
            }
            Stmt::Return(e) => {
                let v = match e {
                    Some(e) => self.eval(e, env, host)?,
                    None => Value::Nil,
                };
                Ok(Flow::Return(v))
            }
            Stmt::Break => Ok(Flow::Break),
        }
    }

    fn eval_owned(
        &mut self,
        e: &Expr,
        env: &Rc<Scope>,
        host: &mut dyn Any,
    ) -> Result<Value, RtError> {
        self.eval(e, env, host)
    }

    fn num(&self, v: Value) -> Result<f64, RtError> {
        num_of(&v)
    }

    fn eval(&mut self, e: &Expr, env: &Rc<Scope>, host: &mut dyn Any) -> Result<Value, RtError> {
        self.tick()?;
        match e {
            Expr::Nil => Ok(Value::Nil),
            Expr::Bool(b) => Ok(Value::Bool(*b)),
            Expr::Num(n) => Ok(Value::Num(*n)),
            Expr::Str(s) => Ok(Value::str(s)),
            Expr::Var(name) => Ok(env.get(name)),
            Expr::TableLit(items) => {
                let mut t = Table::new();
                for item in items {
                    match item {
                        TableItem::Positional(e) => {
                            let v = self.eval(e, env, host)?;
                            t.push(v);
                        }
                        TableItem::Named(k, e) => {
                            let v = self.eval(e, env, host)?;
                            t.set_str(k, v);
                        }
                    }
                }
                Ok(Value::from_table(t))
            }
            Expr::Index(base, idx) => {
                let base_v = self.eval(base, env, host)?;
                let idx_v = self.eval(idx, env, host)?;
                match base_v {
                    Value::Table(t) => {
                        let key = to_key(&idx_v)?;
                        Ok(t.borrow().get(&key))
                    }
                    other => Err(RtError::new(format!(
                        "attempt to index a {} value",
                        other.type_name()
                    ))),
                }
            }
            Expr::Call(callee, args) => {
                let f = self.eval(callee, env, host)?;
                let mut arg_vals = Vec::with_capacity(args.len());
                for a in args {
                    arg_vals.push(self.eval(a, env, host)?);
                }
                self.call_value(&f, arg_vals, host)
            }
            Expr::Lambda(params, body) => Ok(Value::Func(Rc::new(Function {
                params: params.clone(),
                body: body.clone(),
                env: Rc::clone(env),
                name: "<anonymous>".to_string(),
            }))),
            Expr::Bin(op, a, b) => self.eval_bin(*op, a, b, env, host),
            Expr::Un(op, e) => {
                let v = self.eval(e, env, host)?;
                match op {
                    UnOp::Neg => Ok(Value::Num(-self.num(v)?)),
                    UnOp::Not => Ok(Value::Bool(!v.truthy())),
                    UnOp::Len => match &v {
                        Value::Table(t) => Ok(Value::Num(t.borrow().len() as f64)),
                        Value::Str(s) => Ok(Value::Num(s.len() as f64)),
                        other => Err(RtError::new(format!(
                            "attempt to get length of a {} value",
                            other.type_name()
                        ))),
                    },
                }
            }
        }
    }

    fn eval_bin(
        &mut self,
        op: BinOp,
        a: &Expr,
        b: &Expr,
        env: &Rc<Scope>,
        host: &mut dyn Any,
    ) -> Result<Value, RtError> {
        // Short-circuit forms first.
        match op {
            BinOp::And => {
                let lhs = self.eval(a, env, host)?;
                return if lhs.truthy() {
                    self.eval(b, env, host)
                } else {
                    Ok(lhs)
                };
            }
            BinOp::Or => {
                let lhs = self.eval(a, env, host)?;
                return if lhs.truthy() {
                    Ok(lhs)
                } else {
                    self.eval(b, env, host)
                };
            }
            _ => {}
        }
        let lhs = self.eval(a, env, host)?;
        let rhs = self.eval(b, env, host)?;
        match op {
            BinOp::Add => Ok(Value::Num(self.num(lhs)? + self.num(rhs)?)),
            BinOp::Sub => Ok(Value::Num(self.num(lhs)? - self.num(rhs)?)),
            BinOp::Mul => Ok(Value::Num(self.num(lhs)? * self.num(rhs)?)),
            BinOp::Div => Ok(Value::Num(self.num(lhs)? / self.num(rhs)?)),
            BinOp::Mod => {
                let (x, y) = (self.num(lhs)?, self.num(rhs)?);
                // Lua semantics: result has the sign of the divisor.
                Ok(Value::Num(x - (x / y).floor() * y))
            }
            BinOp::Pow => Ok(Value::Num(self.num(lhs)?.powf(self.num(rhs)?))),
            BinOp::Concat => {
                let sa = coerce_str(&lhs)?;
                let sb = coerce_str(&rhs)?;
                Ok(Value::str(format!("{sa}{sb}")))
            }
            BinOp::Eq => Ok(Value::Bool(lhs == rhs)),
            BinOp::Ne => Ok(Value::Bool(lhs != rhs)),
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                let ord = compare(&lhs, &rhs)?;
                Ok(Value::Bool(match op {
                    BinOp::Lt => ord == std::cmp::Ordering::Less,
                    BinOp::Le => ord != std::cmp::Ordering::Greater,
                    BinOp::Gt => ord == std::cmp::Ordering::Greater,
                    BinOp::Ge => ord != std::cmp::Ordering::Less,
                    _ => unreachable!(),
                }))
            }
            BinOp::And | BinOp::Or => unreachable!("handled above"),
        }
    }
}

/// Numeric view of a value, with the engines' shared error message.
/// Both the interpreter and the VM call these helpers so type errors are
/// byte-for-byte identical — a property the differential harness asserts.
pub(crate) fn num_of(v: &Value) -> Result<f64, RtError> {
    v.as_num()
        .ok_or_else(|| RtError::new(format!("expected a number, got {}", v.type_name())))
}

pub(crate) fn to_key(v: &Value) -> Result<Key, RtError> {
    match v {
        Value::Num(n) => {
            if n.fract() == 0.0 {
                Ok(Key::Int(*n as i64))
            } else {
                Err(RtError::new(format!("non-integer table key {n}")))
            }
        }
        Value::Str(s) => Ok(Key::Str(s.to_string())),
        other => Err(RtError::new(format!(
            "invalid table key of type {}",
            other.type_name()
        ))),
    }
}

pub(crate) fn coerce_str(v: &Value) -> Result<String, RtError> {
    match v {
        Value::Str(s) => Ok(s.to_string()),
        Value::Num(n) => Ok(fmt_num(*n)),
        Value::Bool(b) => Ok(b.to_string()),
        Value::Nil => Ok("nil".to_string()),
        other => Err(RtError::new(format!(
            "cannot concatenate a {} value",
            other.type_name()
        ))),
    }
}

pub(crate) fn compare(a: &Value, b: &Value) -> Result<std::cmp::Ordering, RtError> {
    match (a, b) {
        (Value::Num(x), Value::Num(y)) => x
            .partial_cmp(y)
            .ok_or_else(|| RtError::new("NaN comparison")),
        (Value::Str(x), Value::Str(y)) => Ok(x.cmp(y)),
        _ => Err(RtError::new(format!(
            "cannot compare {} with {}",
            a.type_name(),
            b.type_name()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Interp {
        let script = Script::compile(src).unwrap();
        let mut interp = Interp::new();
        interp.load(&script).unwrap();
        interp
    }

    fn eval_global(src: &str, name: &str) -> Value {
        run(src).global(name)
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(eval_global("x = 1 + 2 * 3 - 4 / 2", "x"), Value::from(5.0));
        assert_eq!(eval_global("x = 2 ^ 10", "x"), Value::from(1024.0));
        assert_eq!(eval_global("x = 7 % 3", "x"), Value::from(1.0));
        assert_eq!(eval_global("x = -7 % 3", "x"), Value::from(2.0));
    }

    #[test]
    fn string_concat() {
        assert_eq!(
            eval_global("x = \"a\" .. 1 .. true", "x"),
            Value::str("a1true")
        );
    }

    #[test]
    fn short_circuit_and_or() {
        // `or` returns the first truthy operand, `and` the first falsey.
        assert_eq!(eval_global("x = nil or 5", "x"), Value::from(5.0));
        assert_eq!(
            eval_global("x = false and crash()", "x"),
            Value::from(false)
        );
        assert_eq!(eval_global("x = 1 and 2", "x"), Value::from(2.0));
    }

    #[test]
    fn if_elseif_else_branches() {
        let src = "
            function classify(n)
                if n < 0 then return \"neg\"
                elseif n == 0 then return \"zero\"
                else return \"pos\" end
            end
            a = classify(-1)
            b = classify(0)
            c = classify(1)
        ";
        let interp = run(src);
        assert_eq!(interp.global("a"), Value::str("neg"));
        assert_eq!(interp.global("b"), Value::str("zero"));
        assert_eq!(interp.global("c"), Value::str("pos"));
    }

    #[test]
    fn while_and_break() {
        let src = "
            x = 0
            while true do
                x = x + 1
                if x >= 5 then break end
            end
        ";
        assert_eq!(eval_global(src, "x"), Value::from(5.0));
    }

    #[test]
    fn repeat_until() {
        assert_eq!(
            eval_global("x = 0 repeat x = x + 1 until x >= 3", "x"),
            Value::from(3.0)
        );
    }

    #[test]
    fn numeric_for_sums() {
        assert_eq!(
            eval_global("s = 0 for i = 1, 10 do s = s + i end", "s"),
            Value::from(55.0)
        );
        assert_eq!(
            eval_global("s = 0 for i = 10, 1, -2 do s = s + i end", "s"),
            Value::from(30.0)
        );
    }

    #[test]
    fn generic_for_iterates_array_then_map() {
        let src = "
            t = {10, 20, small = 1, big = 2}
            keys = \"\"
            total = 0
            for k, v in t do
                keys = keys .. k .. \";\"
                total = total + v
            end
        ";
        let interp = run(src);
        assert_eq!(interp.global("keys"), Value::str("1;2;big;small;"));
        assert_eq!(interp.global("total"), Value::from(33.0));
    }

    #[test]
    fn tables_nested_access() {
        let src = "
            t = {inner = {x = 1}}
            t.inner.x = t.inner.x + 41
            t[1] = \"first\"
            v = t.inner.x
            w = t[1]
        ";
        let interp = run(src);
        assert_eq!(interp.global("v"), Value::from(42.0));
        assert_eq!(interp.global("w"), Value::str("first"));
    }

    #[test]
    fn functions_and_recursion() {
        let src = "
            function fib(n)
                if n < 2 then return n end
                return fib(n - 1) + fib(n - 2)
            end
            x = fib(15)
        ";
        assert_eq!(eval_global(src, "x"), Value::from(610.0));
    }

    #[test]
    fn closures_capture_environment() {
        let src = "
            function counter()
                local n = 0
                return function()
                    n = n + 1
                    return n
                end
            end
            c = counter()
            a = c()
            b = c()
        ";
        let interp = run(src);
        assert_eq!(interp.global("a"), Value::from(1.0));
        assert_eq!(interp.global("b"), Value::from(2.0));
    }

    #[test]
    fn locals_shadow_globals() {
        let src = "
            x = 1
            function f()
                local x = 2
                return x
            end
            y = f()
        ";
        let interp = run(src);
        assert_eq!(interp.global("x"), Value::from(1.0));
        assert_eq!(interp.global("y"), Value::from(2.0));
    }

    #[test]
    fn call_entry_point_with_args() {
        let script = Script::compile("function add(a, b) return a + b end").unwrap();
        let mut interp = Interp::new();
        interp.load(&script).unwrap();
        let out = interp
            .call("add", &[Value::from(2.0), Value::from(3.0)], &mut ())
            .unwrap();
        assert_eq!(out, Value::from(5.0));
    }

    #[test]
    fn missing_function_errors() {
        let mut interp = Interp::new();
        let err = interp.call("nope", &[], &mut ()).unwrap_err();
        assert!(err.message.contains("no such function"));
    }

    #[test]
    fn native_function_with_host_state() {
        let mut interp = Interp::new();
        interp.register(
            "bump",
            Rc::new(|ctx, args| {
                let counter = ctx.host.downcast_mut::<u32>().expect("host is u32");
                *counter += args[0].as_num().unwrap_or(0.0) as u32;
                Ok(Value::Num(*counter as f64))
            }),
        );
        let script = Script::compile("function go() return bump(5) + bump(1) end").unwrap();
        let mut host = 10u32;
        interp.load(&script).unwrap();
        let out = interp.call("go", &[], &mut host).unwrap();
        assert_eq!(host, 16);
        assert_eq!(out, Value::from(31.0)); // 15 + 16
    }

    #[test]
    fn instruction_budget_stops_infinite_loops() {
        let script = Script::compile("while true do x = 1 end").unwrap();
        let mut interp = Interp::with_sandbox(Sandbox {
            max_steps: 10_000,
            max_depth: 16,
        });
        let err = interp.load(&script).unwrap_err();
        assert!(err.message.contains("budget"));
    }

    #[test]
    fn call_depth_limit_stops_runaway_recursion() {
        let script = Script::compile("function f() return f() end\n").unwrap();
        let mut interp = Interp::with_sandbox(Sandbox {
            max_steps: 1_000_000,
            max_depth: 32,
        });
        interp.load(&script).unwrap();
        let err = interp.call("f", &[], &mut ()).unwrap_err();
        assert!(err.message.contains("depth"));
    }

    #[test]
    fn type_errors_are_reported() {
        let check = |src: &str, needle: &str| {
            let script = Script::compile(src).unwrap();
            let err = Interp::new().load(&script).unwrap_err();
            assert!(
                err.message.contains(needle),
                "{src}: {} !~ {needle}",
                err.message
            );
        };
        check("x = 1 + \"a\"", "expected a number");
        check("x = nil .. {}", "concatenate");
        check("x = {} < {}", "compare");
        check("x = nil[1]", "index");
        check("local f = 3 f()", "call");
        check("x = #5", "length");
    }

    #[test]
    fn length_operator() {
        assert_eq!(eval_global("x = #\"hello\"", "x"), Value::from(5.0));
        assert_eq!(eval_global("x = #{1, 2, 3}", "x"), Value::from(3.0));
    }

    #[test]
    fn lambda_values_and_higher_order() {
        let src = "
            function apply(f, x) return f(x) end
            y = apply(function(v) return v * 3 end, 7)
        ";
        assert_eq!(eval_global(src, "y"), Value::from(21.0));
    }

    #[test]
    fn budget_resets_between_calls() {
        let script = Script::compile(
            "function burn() local s = 0 for i = 1, 100 do s = s + i end return s end",
        )
        .unwrap();
        let mut interp = Interp::with_sandbox(Sandbox {
            max_steps: 5_000,
            max_depth: 8,
        });
        interp.load(&script).unwrap();
        for _ in 0..50 {
            interp.call("burn", &[], &mut ()).unwrap();
        }
    }

    #[test]
    fn for_zero_step_errors() {
        let script = Script::compile("for i = 1, 10, 0 do break end").unwrap();
        assert!(Interp::new().load(&script).is_err());
    }
}
