//! Bytecode compiler for Cephalo: lowers the AST to compact stack-machine
//! chunks executed by [`crate::vm::Vm`].
//!
//! The tree-walking interpreter ([`crate::interp::Interp`]) remains the
//! reference semantics; the compiler/VM pair exists because per-op policy
//! evaluation (Mantle ticks, object-class calls) is a hot path. Lowering
//! decisions that matter for equivalence:
//!
//! * **Locals are frame slots.** Every `local` resolves at compile time to
//!   a slot index in the enclosing function's frame; reads and writes are
//!   array indexing instead of hash lookups along a scope chain.
//! * **Captured locals are boxed.** A conservative pre-pass collects every
//!   name referenced inside nested function literals; locals with those
//!   names get `Rc<RefCell<Value>>` box slots so closures share the same
//!   storage the interpreter's `Rc<Scope>` chain provides. Re-executing a
//!   declaration (each loop iteration) allocates a fresh box, matching the
//!   interpreter's fresh per-iteration scopes.
//! * **Constant keys are pre-built.** `t.field` and `t[3]` compile to
//!   [`Op::GetConst`]/[`Op::SetConst`] with a [`Key`] from the proto's key
//!   pool — no per-access key conversion or string allocation.
//! * **Top-level `local` is a global.** The interpreter executes the top
//!   level directly in the root (global) scope, so a top-level `local`
//!   declares a global; the compiler emits [`Op::StoreGlobal`] there.
//!
//! One deliberate semantic difference from the tree-walker, documented in
//! DESIGN §18: the compiler resolves names *lexically*, so a function
//! literal referencing a local declared **later** in an enclosing block
//! sees a global, where the interpreter's dynamic scope-chain lookup would
//! see the local once it is declared. This matches Lua's actual scoping
//! rules; the differential generator ([`crate::testgen`]) only emits
//! references to already-declared names.

use std::collections::HashSet;
use std::fmt::Write as _;
use std::rc::Rc;

use crate::ast::{BinOp, Block, Expr, Stmt, TableItem, UnOp};
use crate::value::{Key, Value};
use crate::Script;

/// A compile-time error (e.g. invalid assignment target, pool overflow).
#[derive(Debug, Clone, PartialEq)]
pub struct CompileError {
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "compile error: {}", self.message)
    }
}

impl std::error::Error for CompileError {}

/// One bytecode instruction. Operands index the current proto's pools.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// Push `consts[i]`.
    Const(u16),
    /// Push `nil`.
    Nil,
    /// Push `true`.
    True,
    /// Push `false`.
    False,
    /// Discard the top of stack.
    Pop,
    /// Push a copy of plain local slot `i`.
    LoadLocal(u16),
    /// Pop into plain local slot `i`.
    StoreLocal(u16),
    /// Push a copy of the value in box slot `i`.
    LoadBox(u16),
    /// Pop into the existing box in slot `i`.
    StoreBox(u16),
    /// Pop a value and bind a *fresh* box in slot `i` (a declaration).
    NewBox(u16),
    /// Push a copy of the closure's upvalue `i`.
    LoadUpval(u16),
    /// Pop into the closure's upvalue `i`.
    StoreUpval(u16),
    /// Push the global named `names[i]` (`nil` if unset).
    LoadGlobal(u16),
    /// Pop into the global named `names[i]`.
    StoreGlobal(u16),
    /// Push a fresh empty table.
    NewTable,
    /// Pop a value, append it to the table now on top (table stays).
    TablePush,
    /// Pop a value, set `table[keys[i]]` on the table now on top.
    TableSetConst(u16),
    /// Pop index then base; push `base[index]`.
    GetIndex,
    /// Pop base; push `base[keys[i]]`.
    GetConst(u16),
    /// Stack `[value, base, index]` (index on top): pop all three and
    /// perform `base[index] = value`. Matches the interpreter's
    /// rhs-before-lhs evaluation order.
    SetIndex,
    /// Stack `[value, base]`: pop both, `base[keys[i]] = value`.
    SetConst(u16),
    /// Arithmetic / comparison / concat: pop rhs then lhs, push result.
    Add,
    /// See [`Op::Add`].
    Sub,
    /// See [`Op::Add`].
    Mul,
    /// See [`Op::Add`].
    Div,
    /// Floor-mod with the sign of the divisor (Lua semantics).
    Mod,
    /// See [`Op::Add`].
    Pow,
    /// String concatenation with number/bool/nil coercion.
    Concat,
    /// Structural/identity equality (the `Value` ABI's `==`).
    Eq,
    /// Negation of [`Op::Eq`].
    Ne,
    /// See [`Op::Add`].
    Lt,
    /// See [`Op::Add`].
    Le,
    /// See [`Op::Add`].
    Gt,
    /// See [`Op::Add`].
    Ge,
    /// Pop a number, push its negation.
    Neg,
    /// Pop a value, push `not truthy`.
    Not,
    /// Pop a table/string, push its length.
    Len,
    /// Error unless the top of stack is a number (numeric-`for` bounds).
    CheckNum,
    /// Unconditional jump to instruction `target`.
    Jump(u32),
    /// Pop; jump if the value was falsey.
    JumpIfFalse(u32),
    /// `and`: if top is falsey jump *keeping* it, else pop and continue.
    JumpIfFalsePeek(u32),
    /// `or`: if top is truthy jump *keeping* it, else pop and continue.
    JumpIfTruePeek(u32),
    /// Pop step, stop, start (all pre-checked numbers); reject a zero
    /// step; store the control triple at plain slots `[slot, slot+2]`;
    /// jump to `exit` if the range is empty.
    ForPrep {
        /// First of three consecutive control slots (i, stop, step).
        slot: u16,
        /// Jump target when the loop body never runs.
        exit: u32,
    },
    /// Advance the control variable by step; jump to `back` (the body
    /// head) while still in range.
    ForLoop {
        /// First control slot, as in [`Op::ForPrep`].
        slot: u16,
        /// Body-head target for the next iteration.
        back: u32,
    },
    /// Pop a table; push a snapshot iterator onto the iterator stack.
    IterNew,
    /// Push the next key and value of the top iterator; on exhaustion,
    /// pop the iterator and jump to `target`.
    IterNext(u32),
    /// Pop the top iterator (breaking out of a generic `for`).
    IterDrop,
    /// Pop `n` arguments and the callee beneath them; invoke it.
    Call(u16),
    /// Pop the return value and tear down the current frame.
    Ret,
    /// Return `nil` from the current function.
    RetNil,
    /// Instantiate child proto `i`, capturing its upvalues; push it.
    Closure(u16),
}

/// How a closure obtains one upvalue when instantiated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpvalDesc {
    /// Share the creating frame's box slot `i`.
    ParentBox(u16),
    /// Share the creating closure's own upvalue `i`.
    ParentUpval(u16),
}

/// A compiled function body: code plus its pools and child protos.
#[derive(Debug)]
pub struct Proto {
    /// Diagnostic name (`<main>`, the declared name, or `<anonymous>`).
    pub name: String,
    /// Parameter names (arity = `params.len()`), kept for display parity
    /// with the interpreter's `<function f(a, b)>` formatting.
    pub params: Vec<String>,
    /// Plain local slots the frame needs (parameters occupy the first).
    pub n_slots: u16,
    /// Box slots the frame needs (captured locals).
    pub n_boxes: u16,
    /// Push-able constants (numbers and strings).
    pub consts: Vec<Value>,
    /// Pre-built table keys for const-key indexing.
    pub keys: Vec<Key>,
    /// Interned global names.
    pub names: Vec<Rc<str>>,
    /// The instruction stream.
    pub code: Vec<Op>,
    /// Upvalue capture plan, indexed by `LoadUpval`/`StoreUpval`.
    pub upvals: Vec<UpvalDesc>,
    /// Child protos, indexed by [`Op::Closure`].
    pub protos: Vec<Rc<Proto>>,
}

/// A fully compiled script.
#[derive(Debug, Clone)]
pub struct Chunk {
    /// The top-level proto (children hang off it).
    pub main: Rc<Proto>,
}

/// Compiles a parsed script to bytecode.
///
/// # Errors
///
/// Fails on constructs with no runtime meaning (assignment to a
/// non-lvalue) or pool overflow (≥ 2¹⁶ constants in one function).
pub fn compile(script: &Script) -> Result<Chunk, CompileError> {
    compile_block(&script.block)
}

/// Compiles a bare block as a top-level chunk (used by tests/tools).
///
/// # Errors
///
/// See [`compile`].
pub fn compile_block(block: &Block) -> Result<Chunk, CompileError> {
    let mut c = Compiler { funcs: Vec::new() };
    c.push_func("<main>", &[], block);
    c.block(block)?;
    c.emit(Op::RetNil);
    let fs = c.funcs.pop().expect("main function state");
    Ok(Chunk {
        main: Rc::new(fs.proto),
    })
}

/// Where a name resolves.
enum VarRef {
    Plain(u16),
    Boxed(u16),
    Upval(u16),
    Global,
}

#[derive(Clone, Copy)]
enum SlotRef {
    Plain(u16),
    Boxed(u16),
}

struct LocalVar {
    name: String,
    slot: SlotRef,
}

struct LoopCtx {
    /// Jump sites to patch to the loop's end.
    breaks: Vec<usize>,
    /// Whether `break` must also pop a snapshot iterator.
    genfor: bool,
}

struct FuncState {
    proto: Proto,
    /// Open block scopes, innermost last.
    scopes: Vec<Vec<LocalVar>>,
    /// Plain-slot watermarks saved at scope entry (slots are reused).
    marks: Vec<u16>,
    next_slot: u16,
    /// Names captured by nested function literals (conservative).
    captured: HashSet<String>,
    /// Names of upvalues already added, parallel to `proto.upvals`.
    upval_names: Vec<String>,
    loops: Vec<LoopCtx>,
}

struct Compiler {
    funcs: Vec<FuncState>,
}

impl Compiler {
    fn push_func(&mut self, name: &str, params: &[String], body: &Block) {
        let captured = captured_names(body);
        let mut fs = FuncState {
            proto: Proto {
                name: name.to_string(),
                params: params.to_vec(),
                n_slots: 0,
                n_boxes: 0,
                consts: Vec::new(),
                keys: Vec::new(),
                names: Vec::new(),
                code: Vec::new(),
                upvals: Vec::new(),
                protos: Vec::new(),
            },
            scopes: vec![Vec::new()],
            marks: vec![0],
            next_slot: 0,
            captured,
            upval_names: Vec::new(),
            loops: Vec::new(),
        };
        // Parameters always land in the first plain slots (the VM copies
        // call arguments there). A captured parameter additionally gets a
        // box, filled by a prologue emitted below.
        let mut prologue = Vec::new();
        for (i, p) in params.iter().enumerate() {
            let slot = i as u16;
            if fs.captured.contains(p) {
                let b = fs.proto.n_boxes;
                fs.proto.n_boxes += 1;
                prologue.push((slot, b));
                fs.scopes[0].push(LocalVar {
                    name: p.clone(),
                    slot: SlotRef::Boxed(b),
                });
            } else {
                fs.scopes[0].push(LocalVar {
                    name: p.clone(),
                    slot: SlotRef::Plain(slot),
                });
            }
        }
        fs.next_slot = params.len() as u16;
        fs.proto.n_slots = fs.next_slot;
        for (slot, b) in prologue {
            fs.proto.code.push(Op::LoadLocal(slot));
            fs.proto.code.push(Op::NewBox(b));
        }
        self.funcs.push(fs);
    }

    fn fs(&mut self) -> &mut FuncState {
        self.funcs.last_mut().expect("at least the main function")
    }

    fn emit(&mut self, op: Op) -> usize {
        let code = &mut self.fs().proto.code;
        code.push(op);
        code.len() - 1
    }

    fn here(&mut self) -> u32 {
        self.fs().proto.code.len() as u32
    }

    /// Re-points the jump at `at` to the current instruction.
    fn patch(&mut self, at: usize) {
        let target = self.here();
        let code = &mut self.fs().proto.code;
        code[at] = match code[at] {
            Op::Jump(_) => Op::Jump(target),
            Op::JumpIfFalse(_) => Op::JumpIfFalse(target),
            Op::JumpIfFalsePeek(_) => Op::JumpIfFalsePeek(target),
            Op::JumpIfTruePeek(_) => Op::JumpIfTruePeek(target),
            Op::IterNext(_) => Op::IterNext(target),
            Op::ForPrep { slot, .. } => Op::ForPrep { slot, exit: target },
            other => unreachable!("patching non-jump {other:?}"),
        };
    }

    fn pool_idx(len: usize, what: &str) -> Result<u16, CompileError> {
        u16::try_from(len).map_err(|_| CompileError {
            message: format!("too many {what} in one function"),
        })
    }

    fn const_idx(&mut self, v: Value) -> Result<u16, CompileError> {
        let consts = &mut self.fs().proto.consts;
        for (i, c) in consts.iter().enumerate() {
            let same = match (c, &v) {
                (Value::Num(a), Value::Num(b)) => a.to_bits() == b.to_bits(),
                (Value::Str(a), Value::Str(b)) => a == b,
                _ => false,
            };
            if same {
                return Ok(i as u16);
            }
        }
        let idx = Self::pool_idx(consts.len(), "constants")?;
        consts.push(v);
        Ok(idx)
    }

    fn key_idx(&mut self, k: Key) -> Result<u16, CompileError> {
        let keys = &mut self.fs().proto.keys;
        if let Some(i) = keys.iter().position(|x| *x == k) {
            return Ok(i as u16);
        }
        let idx = Self::pool_idx(keys.len(), "keys")?;
        keys.push(k);
        Ok(idx)
    }

    fn name_idx(&mut self, name: &str) -> Result<u16, CompileError> {
        let names = &mut self.fs().proto.names;
        if let Some(i) = names.iter().position(|x| &**x == name) {
            return Ok(i as u16);
        }
        let idx = Self::pool_idx(names.len(), "global names")?;
        names.push(Rc::from(name));
        Ok(idx)
    }

    fn begin_scope(&mut self) {
        let fs = self.fs();
        let mark = fs.next_slot;
        fs.scopes.push(Vec::new());
        fs.marks.push(mark);
    }

    fn end_scope(&mut self) {
        let fs = self.fs();
        fs.scopes.pop();
        fs.next_slot = fs.marks.pop().expect("scope mark");
    }

    /// Allocates a slot for a new local and registers the name.
    fn declare_local(&mut self, name: &str) -> SlotRef {
        let fs = self.fs();
        let slot = if fs.captured.contains(name) {
            let b = fs.proto.n_boxes;
            fs.proto.n_boxes += 1;
            SlotRef::Boxed(b)
        } else {
            let s = fs.next_slot;
            fs.next_slot += 1;
            fs.proto.n_slots = fs.proto.n_slots.max(fs.next_slot);
            SlotRef::Plain(s)
        };
        fs.scopes.last_mut().expect("open scope").push(LocalVar {
            name: name.to_string(),
            slot,
        });
        slot
    }

    /// Whether the current position is the main proto's outermost scope,
    /// where `local` declares a global (the interpreter runs the top
    /// level directly in the root scope).
    fn at_top_level(&mut self) -> bool {
        self.funcs.len() == 1 && self.fs().scopes.len() == 1
    }

    fn find_local(fs: &FuncState, name: &str) -> Option<SlotRef> {
        for scope in fs.scopes.iter().rev() {
            for var in scope.iter().rev() {
                if var.name == name {
                    return Some(var.slot);
                }
            }
        }
        None
    }

    fn add_upval(&mut self, fi: usize, desc: UpvalDesc, name: &str) -> u16 {
        let fs = &mut self.funcs[fi];
        if let Some(i) = fs.upval_names.iter().position(|n| n == name) {
            return i as u16;
        }
        fs.proto.upvals.push(desc);
        fs.upval_names.push(name.to_string());
        (fs.proto.upvals.len() - 1) as u16
    }

    /// Resolves `name` in function `fi` to an upvalue, chaining through
    /// intermediate functions, or `None` if it is not a captured local of
    /// any enclosing function.
    fn resolve_upval(&mut self, fi: usize, name: &str) -> Option<u16> {
        if fi == 0 {
            return None;
        }
        let parent = fi - 1;
        match Self::find_local(&self.funcs[parent], name) {
            Some(SlotRef::Boxed(b)) => Some(self.add_upval(fi, UpvalDesc::ParentBox(b), name)),
            // A plain (unboxed) local cannot be referenced from a nested
            // function: the capture pre-pass boxes every such name.
            Some(SlotRef::Plain(_)) => None,
            None => {
                let up = self.resolve_upval(parent, name)?;
                Some(self.add_upval(fi, UpvalDesc::ParentUpval(up), name))
            }
        }
    }

    fn resolve(&mut self, name: &str) -> VarRef {
        let fi = self.funcs.len() - 1;
        match Self::find_local(&self.funcs[fi], name) {
            Some(SlotRef::Plain(s)) => VarRef::Plain(s),
            Some(SlotRef::Boxed(b)) => VarRef::Boxed(b),
            None => match self.resolve_upval(fi, name) {
                Some(u) => VarRef::Upval(u),
                None => VarRef::Global,
            },
        }
    }

    fn store_var(&mut self, name: &str) -> Result<(), CompileError> {
        match self.resolve(name) {
            VarRef::Plain(s) => {
                self.emit(Op::StoreLocal(s));
            }
            VarRef::Boxed(b) => {
                self.emit(Op::StoreBox(b));
            }
            VarRef::Upval(u) => {
                self.emit(Op::StoreUpval(u));
            }
            VarRef::Global => {
                let i = self.name_idx(name)?;
                self.emit(Op::StoreGlobal(i));
            }
        }
        Ok(())
    }

    fn block(&mut self, block: &Block) -> Result<(), CompileError> {
        for stmt in block {
            self.stmt(stmt)?;
        }
        Ok(())
    }

    fn stmt(&mut self, stmt: &Stmt) -> Result<(), CompileError> {
        match stmt {
            Stmt::Local(name, e) => {
                self.expr(e)?;
                if self.at_top_level() {
                    let i = self.name_idx(name)?;
                    self.emit(Op::StoreGlobal(i));
                } else {
                    match self.declare_local(name) {
                        SlotRef::Plain(s) => {
                            self.emit(Op::StoreLocal(s));
                        }
                        SlotRef::Boxed(b) => {
                            self.emit(Op::NewBox(b));
                        }
                    }
                }
                Ok(())
            }
            Stmt::Assign(lhs, rhs) => {
                // RHS first, matching the interpreter's evaluation order.
                self.expr(rhs)?;
                match lhs {
                    Expr::Var(name) => self.store_var(name),
                    Expr::Index(base, idx) => {
                        self.expr(base)?;
                        match const_key(idx) {
                            Some(k) => {
                                let i = self.key_idx(k)?;
                                self.emit(Op::SetConst(i));
                            }
                            None => {
                                self.expr(idx)?;
                                self.emit(Op::SetIndex);
                            }
                        }
                        Ok(())
                    }
                    _ => Err(CompileError {
                        message: "invalid assignment target".to_string(),
                    }),
                }
            }
            Stmt::ExprStmt(e) => {
                self.expr(e)?;
                self.emit(Op::Pop);
                Ok(())
            }
            Stmt::If(arms, else_blk) => {
                let mut ends = Vec::new();
                for (cond, body) in arms {
                    self.expr(cond)?;
                    let skip = self.emit(Op::JumpIfFalse(0));
                    self.begin_scope();
                    self.block(body)?;
                    self.end_scope();
                    ends.push(self.emit(Op::Jump(0)));
                    self.patch(skip);
                }
                if let Some(body) = else_blk {
                    self.begin_scope();
                    self.block(body)?;
                    self.end_scope();
                }
                for j in ends {
                    self.patch(j);
                }
                Ok(())
            }
            Stmt::While(cond, body) => {
                let head = self.here();
                self.expr(cond)?;
                let exit = self.emit(Op::JumpIfFalse(0));
                self.fs().loops.push(LoopCtx {
                    breaks: Vec::new(),
                    genfor: false,
                });
                self.begin_scope();
                self.block(body)?;
                self.end_scope();
                self.emit(Op::Jump(head));
                self.patch(exit);
                let breaks = self.fs().loops.pop().expect("loop ctx").breaks;
                for b in breaks {
                    self.patch(b);
                }
                Ok(())
            }
            Stmt::Repeat(body, cond) => {
                let head = self.here();
                self.fs().loops.push(LoopCtx {
                    breaks: Vec::new(),
                    genfor: false,
                });
                // The until-condition sees the body's scope, so the scope
                // stays open across it (the interpreter evaluates the
                // condition in the iteration's child scope).
                self.begin_scope();
                self.block(body)?;
                self.expr(cond)?;
                self.end_scope();
                self.emit(Op::JumpIfFalse(head));
                let breaks = self.fs().loops.pop().expect("loop ctx").breaks;
                for b in breaks {
                    self.patch(b);
                }
                Ok(())
            }
            Stmt::NumFor {
                var,
                start,
                stop,
                step,
                body,
            } => {
                // Bounds are evaluated and number-checked one at a time,
                // exactly as the interpreter interleaves eval + check.
                self.expr(start)?;
                self.emit(Op::CheckNum);
                self.expr(stop)?;
                self.emit(Op::CheckNum);
                match step {
                    Some(e) => {
                        self.expr(e)?;
                        self.emit(Op::CheckNum);
                    }
                    None => {
                        let one = self.const_idx(Value::Num(1.0))?;
                        self.emit(Op::Const(one));
                    }
                }
                // Three hidden control slots spanning the whole loop.
                let ctl = {
                    let fs = self.fs();
                    let s = fs.next_slot;
                    fs.next_slot += 3;
                    fs.proto.n_slots = fs.proto.n_slots.max(fs.next_slot);
                    s
                };
                let prep = self.emit(Op::ForPrep { slot: ctl, exit: 0 });
                let body_head = self.here();
                self.begin_scope();
                let vslot = self.declare_local(var);
                self.emit(Op::LoadLocal(ctl));
                match vslot {
                    SlotRef::Plain(s) => {
                        self.emit(Op::StoreLocal(s));
                    }
                    SlotRef::Boxed(b) => {
                        self.emit(Op::NewBox(b));
                    }
                }
                self.fs().loops.push(LoopCtx {
                    breaks: Vec::new(),
                    genfor: false,
                });
                self.block(body)?;
                self.end_scope();
                self.emit(Op::ForLoop {
                    slot: ctl,
                    back: body_head,
                });
                self.patch(prep);
                let breaks = self.fs().loops.pop().expect("loop ctx").breaks;
                for b in breaks {
                    self.patch(b);
                }
                // Release the control slots.
                self.fs().next_slot = ctl;
                Ok(())
            }
            Stmt::GenFor {
                key,
                value,
                iter,
                body,
            } => {
                self.expr(iter)?;
                self.emit(Op::IterNew);
                let head = self.here();
                let exit = self.emit(Op::IterNext(0));
                self.begin_scope();
                let kslot = self.declare_local(key);
                let vslot = self.declare_local(value);
                // IterNext pushes key then value: store value first.
                match vslot {
                    SlotRef::Plain(s) => {
                        self.emit(Op::StoreLocal(s));
                    }
                    SlotRef::Boxed(b) => {
                        self.emit(Op::NewBox(b));
                    }
                }
                match kslot {
                    SlotRef::Plain(s) => {
                        self.emit(Op::StoreLocal(s));
                    }
                    SlotRef::Boxed(b) => {
                        self.emit(Op::NewBox(b));
                    }
                }
                self.fs().loops.push(LoopCtx {
                    breaks: Vec::new(),
                    genfor: true,
                });
                self.block(body)?;
                self.end_scope();
                self.emit(Op::Jump(head));
                self.patch(exit);
                let breaks = self.fs().loops.pop().expect("loop ctx").breaks;
                for b in breaks {
                    self.patch(b);
                }
                Ok(())
            }
            Stmt::FuncDecl { name, params, body } => {
                let idx = self.function(name, params, body)?;
                self.emit(Op::Closure(idx));
                let i = self.name_idx(name)?;
                self.emit(Op::StoreGlobal(i));
                Ok(())
            }
            Stmt::Return(e) => {
                match e {
                    Some(e) => {
                        self.expr(e)?;
                        self.emit(Op::Ret);
                    }
                    None => {
                        self.emit(Op::RetNil);
                    }
                }
                Ok(())
            }
            Stmt::Break => {
                // `break` without an enclosing loop unwinds the whole
                // call, yielding nil — the interpreter's Flow::Break is
                // absorbed by call_value the same way.
                match self.fs().loops.last().map(|ctx| ctx.genfor) {
                    Some(genfor) => {
                        if genfor {
                            self.emit(Op::IterDrop);
                        }
                        let j = self.emit(Op::Jump(0));
                        self.fs().loops.last_mut().expect("loop ctx").breaks.push(j);
                    }
                    None => {
                        self.emit(Op::RetNil);
                    }
                }
                Ok(())
            }
        }
    }

    /// Compiles a nested function body into a child proto of the current
    /// function; returns its index for [`Op::Closure`].
    fn function(
        &mut self,
        name: &str,
        params: &[String],
        body: &Block,
    ) -> Result<u16, CompileError> {
        self.push_func(name, params, body);
        self.block(body)?;
        self.emit(Op::RetNil);
        let fs = self.funcs.pop().expect("function state");
        let protos = &mut self.fs().proto.protos;
        let idx = Self::pool_idx(protos.len(), "nested functions")?;
        protos.push(Rc::new(fs.proto));
        Ok(idx)
    }

    fn expr(&mut self, e: &Expr) -> Result<(), CompileError> {
        match e {
            Expr::Nil => {
                self.emit(Op::Nil);
            }
            Expr::Bool(true) => {
                self.emit(Op::True);
            }
            Expr::Bool(false) => {
                self.emit(Op::False);
            }
            Expr::Num(n) => {
                let i = self.const_idx(Value::Num(*n))?;
                self.emit(Op::Const(i));
            }
            Expr::Str(s) => {
                let i = self.const_idx(Value::str(s))?;
                self.emit(Op::Const(i));
            }
            Expr::Var(name) => match self.resolve(name) {
                VarRef::Plain(s) => {
                    self.emit(Op::LoadLocal(s));
                }
                VarRef::Boxed(b) => {
                    self.emit(Op::LoadBox(b));
                }
                VarRef::Upval(u) => {
                    self.emit(Op::LoadUpval(u));
                }
                VarRef::Global => {
                    let i = self.name_idx(name)?;
                    self.emit(Op::LoadGlobal(i));
                }
            },
            Expr::TableLit(items) => {
                self.emit(Op::NewTable);
                for item in items {
                    match item {
                        TableItem::Positional(e) => {
                            self.expr(e)?;
                            self.emit(Op::TablePush);
                        }
                        TableItem::Named(k, e) => {
                            self.expr(e)?;
                            let i = self.key_idx(Key::Str(k.clone()))?;
                            self.emit(Op::TableSetConst(i));
                        }
                    }
                }
            }
            Expr::Index(base, idx) => {
                self.expr(base)?;
                match const_key(idx) {
                    Some(k) => {
                        let i = self.key_idx(k)?;
                        self.emit(Op::GetConst(i));
                    }
                    None => {
                        self.expr(idx)?;
                        self.emit(Op::GetIndex);
                    }
                }
            }
            Expr::Call(callee, args) => {
                self.expr(callee)?;
                for a in args {
                    self.expr(a)?;
                }
                let n = u16::try_from(args.len()).map_err(|_| CompileError {
                    message: "too many call arguments".to_string(),
                })?;
                self.emit(Op::Call(n));
            }
            Expr::Lambda(params, body) => {
                let idx = self.function("<anonymous>", params, body)?;
                self.emit(Op::Closure(idx));
            }
            Expr::Bin(BinOp::And, a, b) => {
                self.expr(a)?;
                let j = self.emit(Op::JumpIfFalsePeek(0));
                self.expr(b)?;
                self.patch(j);
            }
            Expr::Bin(BinOp::Or, a, b) => {
                self.expr(a)?;
                let j = self.emit(Op::JumpIfTruePeek(0));
                self.expr(b)?;
                self.patch(j);
            }
            Expr::Bin(op, a, b) => {
                self.expr(a)?;
                self.expr(b)?;
                self.emit(match op {
                    BinOp::Add => Op::Add,
                    BinOp::Sub => Op::Sub,
                    BinOp::Mul => Op::Mul,
                    BinOp::Div => Op::Div,
                    BinOp::Mod => Op::Mod,
                    BinOp::Pow => Op::Pow,
                    BinOp::Concat => Op::Concat,
                    BinOp::Eq => Op::Eq,
                    BinOp::Ne => Op::Ne,
                    BinOp::Lt => Op::Lt,
                    BinOp::Le => Op::Le,
                    BinOp::Gt => Op::Gt,
                    BinOp::Ge => Op::Ge,
                    BinOp::And | BinOp::Or => unreachable!("handled above"),
                });
            }
            Expr::Un(op, e) => {
                self.expr(e)?;
                self.emit(match op {
                    UnOp::Neg => Op::Neg,
                    UnOp::Not => Op::Not,
                    UnOp::Len => Op::Len,
                });
            }
        }
        Ok(())
    }
}

/// A compile-time constant table key, if `idx` is one. Non-integer
/// numeric literals return `None` so the "non-integer table key" error
/// still fires at runtime, at the same execution point as the
/// interpreter's.
fn const_key(idx: &Expr) -> Option<Key> {
    match idx {
        Expr::Str(s) => Some(Key::Str(s.clone())),
        Expr::Num(n) if n.fract() == 0.0 => Some(Key::Int(*n as i64)),
        _ => None,
    }
}

/// Conservative capture analysis: every variable name referenced anywhere
/// inside a nested function literal of `block`. Locals with these names
/// are boxed; over-approximation (shadowed names) costs a box, never
/// correctness.
fn captured_names(block: &Block) -> HashSet<String> {
    let mut set = HashSet::new();
    for stmt in block {
        walk_stmt(stmt, false, &mut set);
    }
    set
}

fn walk_stmt(stmt: &Stmt, inside_fn: bool, set: &mut HashSet<String>) {
    match stmt {
        Stmt::Local(name, e) => {
            if inside_fn {
                set.insert(name.clone());
            }
            walk_expr(e, inside_fn, set);
        }
        Stmt::Assign(l, r) => {
            walk_expr(l, inside_fn, set);
            walk_expr(r, inside_fn, set);
        }
        Stmt::ExprStmt(e) => walk_expr(e, inside_fn, set),
        Stmt::If(arms, else_blk) => {
            for (c, b) in arms {
                walk_expr(c, inside_fn, set);
                for s in b {
                    walk_stmt(s, inside_fn, set);
                }
            }
            if let Some(b) = else_blk {
                for s in b {
                    walk_stmt(s, inside_fn, set);
                }
            }
        }
        Stmt::While(c, b) => {
            walk_expr(c, inside_fn, set);
            for s in b {
                walk_stmt(s, inside_fn, set);
            }
        }
        Stmt::Repeat(b, c) => {
            for s in b {
                walk_stmt(s, inside_fn, set);
            }
            walk_expr(c, inside_fn, set);
        }
        Stmt::NumFor {
            var,
            start,
            stop,
            step,
            body,
        } => {
            if inside_fn {
                set.insert(var.clone());
            }
            walk_expr(start, inside_fn, set);
            walk_expr(stop, inside_fn, set);
            if let Some(e) = step {
                walk_expr(e, inside_fn, set);
            }
            for s in body {
                walk_stmt(s, inside_fn, set);
            }
        }
        Stmt::GenFor {
            key,
            value,
            iter,
            body,
        } => {
            if inside_fn {
                set.insert(key.clone());
                set.insert(value.clone());
            }
            walk_expr(iter, inside_fn, set);
            for s in body {
                walk_stmt(s, inside_fn, set);
            }
        }
        Stmt::FuncDecl { params, body, .. } => {
            if inside_fn {
                for p in params {
                    set.insert(p.clone());
                }
            }
            for s in body {
                walk_stmt(s, true, set);
            }
        }
        Stmt::Return(Some(e)) => walk_expr(e, inside_fn, set),
        Stmt::Return(None) | Stmt::Break => {}
    }
}

fn walk_expr(e: &Expr, inside_fn: bool, set: &mut HashSet<String>) {
    match e {
        Expr::Var(name) => {
            if inside_fn {
                set.insert(name.clone());
            }
        }
        Expr::TableLit(items) => {
            for item in items {
                match item {
                    TableItem::Positional(e) => walk_expr(e, inside_fn, set),
                    TableItem::Named(_, e) => walk_expr(e, inside_fn, set),
                }
            }
        }
        Expr::Index(a, b) => {
            walk_expr(a, inside_fn, set);
            walk_expr(b, inside_fn, set);
        }
        Expr::Call(f, args) => {
            walk_expr(f, inside_fn, set);
            for a in args {
                walk_expr(a, inside_fn, set);
            }
        }
        Expr::Lambda(params, body) => {
            if inside_fn {
                for p in params {
                    set.insert(p.clone());
                }
            }
            for s in body {
                walk_stmt(s, true, set);
            }
        }
        Expr::Bin(_, a, b) => {
            walk_expr(a, inside_fn, set);
            walk_expr(b, inside_fn, set);
        }
        Expr::Un(_, e) => walk_expr(e, inside_fn, set),
        Expr::Nil | Expr::Bool(_) | Expr::Num(_) | Expr::Str(_) => {}
    }
}

impl Chunk {
    /// Renders the whole chunk as reviewable assembly, one section per
    /// proto (depth-first), with operand annotations. Deterministic, so
    /// codegen changes show up as golden-file diffs.
    pub fn disassemble(&self) -> String {
        let mut out = String::new();
        disasm_proto(&self.main, "main", &mut out);
        out
    }
}

fn disasm_proto(p: &Proto, path: &str, out: &mut String) {
    let _ = writeln!(out, "== {path} ({}) ==", p.params.join(", "));
    let _ = writeln!(
        out,
        "  slots={} boxes={} upvals={}",
        p.n_slots,
        p.n_boxes,
        p.upvals.len()
    );
    for (i, c) in p.consts.iter().enumerate() {
        let rendered = match c {
            Value::Str(s) => format!("{s:?}"),
            other => other.display(),
        };
        let _ = writeln!(out, "  const[{i}] = {rendered}");
    }
    for (i, k) in p.keys.iter().enumerate() {
        let rendered = match k {
            Key::Int(n) => format!("[{n}]"),
            Key::Str(s) => format!(".{s}"),
        };
        let _ = writeln!(out, "  key[{i}] = {rendered}");
    }
    for (i, n) in p.names.iter().enumerate() {
        let _ = writeln!(out, "  name[{i}] = {n}");
    }
    for (i, u) in p.upvals.iter().enumerate() {
        let rendered = match u {
            UpvalDesc::ParentBox(b) => format!("parent box {b}"),
            UpvalDesc::ParentUpval(v) => format!("parent upval {v}"),
        };
        let _ = writeln!(out, "  upval[{i}] = {rendered}");
    }
    for (i, op) in p.code.iter().enumerate() {
        let note = match op {
            Op::Const(k) => {
                let c = &p.consts[*k as usize];
                match c {
                    Value::Str(s) => format!(" ; {s:?}"),
                    other => format!(" ; {}", other.display()),
                }
            }
            Op::GetConst(k) | Op::SetConst(k) | Op::TableSetConst(k) => {
                match &p.keys[*k as usize] {
                    Key::Int(n) => format!(" ; [{n}]"),
                    Key::Str(s) => format!(" ; .{s}"),
                }
            }
            Op::LoadGlobal(n) | Op::StoreGlobal(n) => {
                format!(" ; {}", p.names[*n as usize])
            }
            Op::Closure(c) => format!(" ; {}", p.protos[*c as usize].name),
            _ => String::new(),
        };
        let _ = writeln!(out, "  {i:4}  {op:?}{note}");
    }
    let _ = writeln!(out);
    for child in &p.protos {
        disasm_proto(child, &format!("{path}/{}", child.name), out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunk(src: &str) -> Chunk {
        compile(&Script::compile(src).unwrap()).unwrap()
    }

    #[test]
    fn top_level_local_compiles_to_global_store() {
        let c = chunk("local x = 1");
        assert!(c.main.code.contains(&Op::StoreGlobal(0)));
        assert_eq!(c.main.n_slots, 0);
    }

    #[test]
    fn block_local_gets_a_slot() {
        let c = chunk("if true then local x = 1 x = x + 1 end");
        assert!(c.main.code.contains(&Op::StoreLocal(0)));
        assert_eq!(c.main.n_slots, 1);
    }

    #[test]
    fn captured_local_gets_a_box() {
        let c = chunk(
            "function mk()
                local n = 0
                return function() n = n + 1 return n end
            end",
        );
        let mk = &c.main.protos[0];
        assert_eq!(mk.n_boxes, 1);
        assert!(mk.code.contains(&Op::NewBox(0)));
        let inner = &mk.protos[0];
        assert_eq!(inner.upvals, vec![UpvalDesc::ParentBox(0)]);
    }

    #[test]
    fn const_field_access_uses_key_pool() {
        let c = chunk("x = t.load + t[2]");
        assert!(c.main.code.contains(&Op::GetConst(0)));
        assert_eq!(c.main.keys[0], Key::Str("load".to_string()));
        assert_eq!(c.main.keys[1], Key::Int(2));
    }

    #[test]
    fn non_integer_const_key_stays_dynamic() {
        let c = chunk("x = t[1.5]");
        assert!(c.main.code.contains(&Op::GetIndex));
        assert!(c.main.keys.is_empty());
    }

    #[test]
    fn jumps_are_patched_forward() {
        let c = chunk("if a then b = 1 else b = 2 end");
        for op in &c.main.code {
            if let Op::Jump(t) | Op::JumpIfFalse(t) = op {
                assert!((*t as usize) <= c.main.code.len());
                assert!(*t > 0, "patched jump must not target 0 here");
            }
        }
    }

    #[test]
    fn slot_reuse_across_sibling_scopes() {
        let c = chunk(
            "if a then local x = 1 print(x) end
             if b then local y = 2 print(y) end",
        );
        assert_eq!(c.main.n_slots, 1);
    }

    #[test]
    fn disassembly_names_operands() {
        let c = chunk("function f(a) return a + 1 end\nx = f(2)");
        let d = c.disassemble();
        assert!(d.contains("== main ()"), "{d}");
        assert!(d.contains("== main/f (a)"), "{d}");
        assert!(d.contains("; f"), "{d}");
    }

    #[test]
    fn break_outside_loop_returns_nil() {
        let c = chunk("break");
        assert_eq!(c.main.code[0], Op::RetNil);
    }
}
