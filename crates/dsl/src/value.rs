//! Runtime values for Cephalo.

use std::any::Any;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

use crate::ast::Block;
use crate::interp::RtError;

/// A table key: Cephalo restricts keys to strings and integers, which is
/// what the paper's balancer and object-class scripts use.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Key {
    /// Integer key (numeric keys must be whole numbers).
    Int(i64),
    /// String key.
    Str(String),
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Key::Int(i) => write!(f, "{i}"),
            Key::Str(s) => write!(f, "{s}"),
        }
    }
}

/// A Cephalo table: a growable array part (1-based, like Lua) plus a sorted
/// map part. Iteration order is deterministic: array first, then map keys in
/// `Ord` order — determinism matters because scripts run inside a
/// deterministic simulation.
#[derive(Debug, Default, Clone)]
pub struct Table {
    arr: Vec<Value>,
    map: BTreeMap<Key, Value>,
}

impl Table {
    /// Creates an empty table.
    pub fn new() -> Table {
        Table::default()
    }

    /// Number of elements in the array part (the `#` operator).
    pub fn len(&self) -> usize {
        self.arr.len()
    }

    /// Whether both parts are empty.
    pub fn is_empty(&self) -> bool {
        self.arr.is_empty() && self.map.is_empty()
    }

    /// Appends to the array part.
    pub fn push(&mut self, v: Value) {
        self.arr.push(v);
    }

    /// Removes and returns the last array element.
    pub fn pop(&mut self) -> Option<Value> {
        self.arr.pop()
    }

    /// Reads by key; missing entries read as `nil`.
    pub fn get(&self, key: &Key) -> Value {
        if let Key::Int(i) = key {
            if *i >= 1 && (*i as usize) <= self.arr.len() {
                return self.arr[(*i - 1) as usize].clone();
            }
        }
        self.map.get(key).cloned().unwrap_or(Value::Nil)
    }

    /// Convenience string-key read.
    pub fn get_str(&self, key: &str) -> Value {
        self.get(&Key::Str(key.to_string()))
    }

    /// Writes by key. Integer writes adjacent to the array part extend it;
    /// assigning `nil` deletes map entries.
    pub fn set(&mut self, key: Key, v: Value) {
        if let Key::Int(i) = key {
            if i >= 1 && (i as usize) <= self.arr.len() {
                self.arr[(i - 1) as usize] = v;
                return;
            }
            if i as usize == self.arr.len() + 1 && !matches!(v, Value::Nil) {
                self.arr.push(v);
                // Absorb any map entries that now become contiguous.
                let mut next = self.arr.len() as i64 + 1;
                while let Some(absorbed) = self.map.remove(&Key::Int(next)) {
                    self.arr.push(absorbed);
                    next += 1;
                }
                return;
            }
        }
        if matches!(v, Value::Nil) {
            self.map.remove(&key);
        } else {
            self.map.insert(key, v);
        }
    }

    /// Convenience string-key write.
    pub fn set_str(&mut self, key: &str, v: Value) {
        self.set(Key::Str(key.to_string()), v);
    }

    /// Deterministic iteration: array entries as `(Int(i), v)` (1-based),
    /// then map entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (Key, Value)> + '_ {
        self.arr
            .iter()
            .enumerate()
            .map(|(i, v)| (Key::Int(i as i64 + 1), v.clone()))
            .chain(self.map.iter().map(|(k, v)| (k.clone(), v.clone())))
    }

    /// The array part as a slice.
    pub fn array(&self) -> &[Value] {
        &self.arr
    }
}

/// A script-defined function: parameters, body, and captured environment.
pub struct Function {
    /// Parameter names.
    pub params: Vec<String>,
    /// Function body.
    pub body: Block,
    /// Lexical environment captured at definition time.
    pub env: Rc<Scope>,
    /// Best-effort name for diagnostics.
    pub name: String,
}

impl fmt::Debug for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<function {}({})>", self.name, self.params.join(", "))
    }
}

/// Host context passed to native functions: the embedding-specific state
/// (`host`, downcast by each binding) and the interpreter's output sink.
pub struct HostCtx<'a> {
    /// Embedding-specific mutable state (e.g. OSD object handle, balancer
    /// view). Native functions downcast this to the concrete type their
    /// embedding registered them with.
    pub host: &'a mut dyn Any,
    /// Lines emitted by `print`/`log`, collected per interpreter.
    pub output: &'a mut Vec<String>,
}

/// Signature of a host-registered native function.
pub type NativeFn = Rc<dyn Fn(&mut HostCtx<'_>, &[Value]) -> Result<Value, RtError>>;

/// A named native function value.
#[derive(Clone)]
pub struct Native {
    /// Diagnostic name.
    pub name: String,
    /// The callable.
    pub f: NativeFn,
}

impl fmt::Debug for Native {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<native {}>", self.name)
    }
}

/// A lexical scope frame. Scopes form a parent chain; globals are the root.
#[derive(Debug, Default)]
pub struct Scope {
    vars: RefCell<std::collections::HashMap<String, Value>>,
    parent: Option<Rc<Scope>>,
}

impl Scope {
    /// Creates a root (global) scope.
    pub fn root() -> Rc<Scope> {
        Rc::new(Scope::default())
    }

    /// Creates a child scope of `parent`.
    pub fn child(parent: &Rc<Scope>) -> Rc<Scope> {
        Rc::new(Scope {
            vars: RefCell::new(std::collections::HashMap::new()),
            parent: Some(Rc::clone(parent)),
        })
    }

    /// Declares a variable in this frame (shadowing outer frames).
    pub fn declare(&self, name: &str, v: Value) {
        self.vars.borrow_mut().insert(name.to_string(), v);
    }

    /// Reads a variable, walking the parent chain; unknowns read as `nil`.
    pub fn get(&self, name: &str) -> Value {
        if let Some(v) = self.vars.borrow().get(name) {
            return v.clone();
        }
        match &self.parent {
            Some(p) => p.get(name),
            None => Value::Nil,
        }
    }

    /// Assigns to the nearest frame declaring `name`; if none, assigns at
    /// the root (creating a global), matching Lua semantics.
    pub fn set(&self, name: &str, v: Value) {
        if self.vars.borrow().contains_key(name) {
            self.vars.borrow_mut().insert(name.to_string(), v);
            return;
        }
        match &self.parent {
            Some(p) => p.set(name, v),
            None => {
                self.vars.borrow_mut().insert(name.to_string(), v);
            }
        }
    }
}

/// A runtime value.
#[derive(Debug, Clone, Default)]
pub enum Value {
    /// Absence of a value; falsey.
    #[default]
    Nil,
    /// Boolean; `false` is falsey.
    Bool(bool),
    /// IEEE-754 double, the only numeric type (as in Lua 5.1).
    Num(f64),
    /// Immutable string.
    Str(Rc<str>),
    /// Shared mutable table.
    Table(Rc<RefCell<Table>>),
    /// Script-defined function.
    Func(Rc<Function>),
    /// Compiled script function (the bytecode VM's closure form).
    Closure(Rc<crate::vm::Closure>),
    /// Host-registered native function. Boxed behind `Rc` so the variant
    /// is pointer-sized: it keeps `Value` at 24 bytes (it would otherwise
    /// carry `Native`'s inline `String` + fat fn pointer), and cloning a
    /// native global is a refcount bump instead of a string allocation.
    Native(Rc<Native>),
}

impl Value {
    /// Builds a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Rc::from(s.as_ref()))
    }

    /// Builds a fresh empty table value.
    pub fn table() -> Value {
        Value::Table(Rc::new(RefCell::new(Table::new())))
    }

    /// Wraps an existing table.
    pub fn from_table(t: Table) -> Value {
        Value::Table(Rc::new(RefCell::new(t)))
    }

    /// Lua truthiness: everything but `nil` and `false` is true.
    pub fn truthy(&self) -> bool {
        !matches!(self, Value::Nil | Value::Bool(false))
    }

    /// The type name used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Nil => "nil",
            Value::Bool(_) => "boolean",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Table(_) => "table",
            Value::Func(_) | Value::Closure(_) | Value::Native(_) => "function",
        }
    }

    /// Numeric view, if this value is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String view, if this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Table view, if this value is a table.
    pub fn as_table(&self) -> Option<&Rc<RefCell<Table>>> {
        match self {
            Value::Table(t) => Some(t),
            _ => None,
        }
    }

    /// Converts to a display string (the `tostring` builtin).
    pub fn display(&self) -> String {
        self.display_depth(8)
    }

    /// Display with a nesting budget: tables deeper than the budget
    /// render as `{...}`, so cyclic tables (`t.x = t`) cannot recurse the
    /// host stack into an abort the sandbox can't catch.
    fn display_depth(&self, depth: u32) -> String {
        match self {
            Value::Nil => "nil".to_string(),
            Value::Bool(b) => b.to_string(),
            Value::Num(n) => fmt_num(*n),
            Value::Str(s) => s.to_string(),
            Value::Table(t) => {
                if depth == 0 {
                    return "{...}".to_string();
                }
                let t = t.borrow();
                let mut parts: Vec<String> = t
                    .array()
                    .iter()
                    .map(|v| v.display_depth(depth - 1))
                    .collect();
                for (k, v) in t.iter().skip(t.array().len()) {
                    parts.push(format!("{k} = {}", v.display_depth(depth - 1)));
                }
                format!("{{{}}}", parts.join(", "))
            }
            Value::Func(func) => format!("{func:?}"),
            Value::Closure(c) => format!("{c:?}"),
            Value::Native(n) => format!("{n:?}"),
        }
    }
}

/// Formats a number the way Lua's `tostring` does for common cases:
/// integral values print without a fractional part.
pub fn fmt_num(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Nil, Value::Nil) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Num(a), Value::Num(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Table(a), Value::Table(b)) => Rc::ptr_eq(a, b),
            (Value::Func(a), Value::Func(b)) => Rc::ptr_eq(a, b),
            (Value::Closure(a), Value::Closure(b)) => Rc::ptr_eq(a, b),
            (Value::Native(a), Value::Native(b)) => Rc::ptr_eq(&a.f, &b.f),
            _ => false,
        }
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Num(n)
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Value {
        Value::Num(n as f64)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_array_and_map_parts() {
        let mut t = Table::new();
        t.set(Key::Int(1), Value::from(10.0));
        t.set(Key::Int(2), Value::from(20.0));
        t.set_str("name", Value::str("x"));
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(&Key::Int(1)), Value::from(10.0));
        assert_eq!(t.get_str("name"), Value::str("x"));
        assert_eq!(t.get(&Key::Int(99)), Value::Nil);
    }

    #[test]
    fn table_append_absorbs_sparse_entries() {
        let mut t = Table::new();
        t.set(Key::Int(2), Value::from(2.0)); // sparse → map
        assert_eq!(t.len(), 0);
        t.set(Key::Int(1), Value::from(1.0)); // extends array, absorbs 2
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(&Key::Int(2)), Value::from(2.0));
    }

    #[test]
    fn nil_assignment_deletes_map_entries() {
        let mut t = Table::new();
        t.set_str("k", Value::from(1.0));
        t.set_str("k", Value::Nil);
        assert_eq!(t.get_str("k"), Value::Nil);
        assert!(t.is_empty());
    }

    #[test]
    fn iteration_is_deterministic() {
        let mut t = Table::new();
        t.push(Value::from(1.0));
        t.set_str("z", Value::from(2.0));
        t.set_str("a", Value::from(3.0));
        let keys: Vec<String> = t.iter().map(|(k, _)| k.to_string()).collect();
        assert_eq!(keys, vec!["1", "a", "z"]);
    }

    #[test]
    fn truthiness() {
        assert!(!Value::Nil.truthy());
        assert!(!Value::Bool(false).truthy());
        assert!(Value::Num(0.0).truthy());
        assert!(Value::str("").truthy());
    }

    #[test]
    fn equality_by_value_and_identity() {
        assert_eq!(Value::from(1.0), Value::from(1.0));
        assert_eq!(Value::str("a"), Value::str("a"));
        let t1 = Value::table();
        let t2 = Value::table();
        assert_ne!(t1, t2);
        assert_eq!(t1, t1.clone());
        assert_ne!(Value::from(1.0), Value::str("1"));
    }

    #[test]
    fn scope_chain_lookup_and_assignment() {
        let root = Scope::root();
        root.declare("g", Value::from(1.0));
        let child = Scope::child(&root);
        assert_eq!(child.get("g"), Value::from(1.0));
        child.set("g", Value::from(2.0));
        assert_eq!(root.get("g"), Value::from(2.0));
        child.declare("g", Value::from(3.0));
        child.set("g", Value::from(4.0));
        assert_eq!(root.get("g"), Value::from(2.0));
        assert_eq!(child.get("g"), Value::from(4.0));
        // Assigning an undeclared name creates a global.
        child.set("fresh", Value::from(9.0));
        assert_eq!(root.get("fresh"), Value::from(9.0));
    }

    #[test]
    fn num_formatting() {
        assert_eq!(fmt_num(3.0), "3");
        assert_eq!(fmt_num(3.5), "3.5");
        assert_eq!(fmt_num(-2.0), "-2");
    }

    #[test]
    fn display_nested_table() {
        let mut t = Table::new();
        t.push(Value::from(1.0));
        t.set_str("k", Value::str("v"));
        assert_eq!(Value::from_table(t).display(), "{1, k = v}");
    }

    #[test]
    fn display_cyclic_table_terminates() {
        let v = Value::table();
        if let Value::Table(rc) = &v {
            rc.borrow_mut().set_str("me", v.clone());
        }
        // `t.me = t`: the display budget bottoms out instead of
        // recursing the host stack to death.
        let s = v.display();
        assert!(s.ends_with("{...}}}}}}}}}"), "{s}");
    }
}
