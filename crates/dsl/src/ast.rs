//! Abstract syntax tree for Cephalo, plus a pretty-printer.
//!
//! The pretty-printer produces parseable source: `parse(print(ast)) == ast`,
//! an invariant enforced by property tests. The monitor service ships
//! scripts around the cluster as source text, so printability doubles as the
//! wire format.

use std::fmt;

/// A sequence of statements.
pub type Block = Vec<Stmt>;

/// Statement forms.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `local name = expr`
    Local(String, Expr),
    /// `lhs = expr` where lhs is a name / field / index chain.
    Assign(Expr, Expr),
    /// An expression evaluated for side effects (function calls).
    ExprStmt(Expr),
    /// `if cond then block {elseif cond then block} [else block] end`
    If(Vec<(Expr, Block)>, Option<Block>),
    /// `while cond do block end`
    While(Expr, Block),
    /// `repeat block until cond`
    Repeat(Block, Expr),
    /// `for var = start, stop [, step] do block end`
    NumFor {
        /// Loop variable, freshly scoped per iteration.
        var: String,
        /// Initial value expression.
        start: Expr,
        /// Inclusive bound expression.
        stop: Expr,
        /// Optional step (defaults to 1).
        step: Option<Expr>,
        /// Loop body.
        body: Block,
    },
    /// `for k, v in t do block end` — iterates array part then map part.
    GenFor {
        /// Key/index variable.
        key: String,
        /// Value variable.
        value: String,
        /// Expression yielding the table to iterate.
        iter: Expr,
        /// Loop body.
        body: Block,
    },
    /// `function name(params) block end` (sugar for global assignment).
    FuncDecl {
        /// Global function name.
        name: String,
        /// Parameter names.
        params: Vec<String>,
        /// Function body.
        body: Block,
    },
    /// `return [expr]`
    Return(Option<Expr>),
    /// `break`
    Break,
}

/// Expression forms.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// `nil`
    Nil,
    /// `true` / `false`
    Bool(bool),
    /// Numeric literal.
    Num(f64),
    /// String literal.
    Str(String),
    /// Variable reference.
    Var(String),
    /// `{ [expr, ...] [name = expr, ...] }`
    TableLit(Vec<TableItem>),
    /// `base[index]` (also `base.field` with a string index).
    Index(Box<Expr>, Box<Expr>),
    /// `f(args...)`
    Call(Box<Expr>, Vec<Expr>),
    /// Anonymous `function(params) body end`.
    Lambda(Vec<String>, Block),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Un(UnOp, Box<Expr>),
}

/// One entry in a table constructor.
#[derive(Debug, Clone, PartialEq)]
pub enum TableItem {
    /// Positional entry appended to the array part.
    Positional(Expr),
    /// `name = value` entry in the map part.
    Named(String, Expr),
}

/// Binary operators, in increasing precedence groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Or,
    And,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Concat,
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Pow,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not.
    Not,
    /// Table/string length `#`.
    Len,
}

impl BinOp {
    /// Parser precedence (higher binds tighter). `Pow` and `Concat` are
    /// right-associative.
    pub fn precedence(self) -> u8 {
        match self {
            BinOp::Or => 1,
            BinOp::And => 2,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 3,
            BinOp::Concat => 4,
            BinOp::Add | BinOp::Sub => 5,
            BinOp::Mul | BinOp::Div | BinOp::Mod => 6,
            BinOp::Pow => 8,
        }
    }

    /// Whether the operator associates to the right.
    pub fn right_assoc(self) -> bool {
        matches!(self, BinOp::Concat | BinOp::Pow)
    }

    /// Source spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Or => "or",
            BinOp::And => "and",
            BinOp::Eq => "==",
            BinOp::Ne => "~=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Concat => "..",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Pow => "^",
        }
    }
}

fn fmt_block(block: &Block, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
    for stmt in block {
        stmt.fmt_indented(f, indent)?;
    }
    Ok(())
}

impl Stmt {
    fn fmt_indented(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        let pad = "    ".repeat(indent);
        match self {
            Stmt::Local(name, e) => writeln!(f, "{pad}local {name} = {e}"),
            Stmt::Assign(lhs, rhs) => writeln!(f, "{pad}{lhs} = {rhs}"),
            Stmt::ExprStmt(e) => writeln!(f, "{pad}{e}"),
            Stmt::If(arms, else_blk) => {
                for (i, (cond, blk)) in arms.iter().enumerate() {
                    let kw = if i == 0 { "if" } else { "elseif" };
                    writeln!(f, "{pad}{kw} {cond} then")?;
                    fmt_block(blk, f, indent + 1)?;
                }
                if let Some(blk) = else_blk {
                    writeln!(f, "{pad}else")?;
                    fmt_block(blk, f, indent + 1)?;
                }
                writeln!(f, "{pad}end")
            }
            Stmt::While(cond, body) => {
                writeln!(f, "{pad}while {cond} do")?;
                fmt_block(body, f, indent + 1)?;
                writeln!(f, "{pad}end")
            }
            Stmt::Repeat(body, cond) => {
                writeln!(f, "{pad}repeat")?;
                fmt_block(body, f, indent + 1)?;
                writeln!(f, "{pad}until {cond}")
            }
            Stmt::NumFor {
                var,
                start,
                stop,
                step,
                body,
            } => {
                write!(f, "{pad}for {var} = {start}, {stop}")?;
                if let Some(s) = step {
                    write!(f, ", {s}")?;
                }
                writeln!(f, " do")?;
                fmt_block(body, f, indent + 1)?;
                writeln!(f, "{pad}end")
            }
            Stmt::GenFor {
                key,
                value,
                iter,
                body,
            } => {
                writeln!(f, "{pad}for {key}, {value} in {iter} do")?;
                fmt_block(body, f, indent + 1)?;
                writeln!(f, "{pad}end")
            }
            Stmt::FuncDecl { name, params, body } => {
                writeln!(f, "{pad}function {name}({})", params.join(", "))?;
                fmt_block(body, f, indent + 1)?;
                writeln!(f, "{pad}end")
            }
            Stmt::Return(Some(e)) => writeln!(f, "{pad}return {e}"),
            Stmt::Return(None) => writeln!(f, "{pad}return"),
            Stmt::Break => writeln!(f, "{pad}break"),
        }
    }
}

impl fmt::Display for Stmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_indented(f, 0)
    }
}

/// Prints a whole block as parseable source.
pub fn print_block(block: &Block) -> String {
    struct P<'a>(&'a Block);
    impl fmt::Display for P<'_> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            fmt_block(self.0, f, 0)
        }
    }
    P(block).to_string()
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            other => out.push(other),
        }
    }
    out
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Nil => write!(f, "nil"),
            Expr::Bool(b) => write!(f, "{b}"),
            Expr::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Expr::Str(s) => write!(f, "\"{}\"", escape(s)),
            Expr::Var(name) => write!(f, "{name}"),
            Expr::TableLit(items) => {
                write!(f, "{{")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    match item {
                        TableItem::Positional(e) => write!(f, "{e}")?,
                        TableItem::Named(k, v) => write!(f, "{k} = {v}")?,
                    }
                }
                write!(f, "}}")
            }
            Expr::Index(base, idx) => {
                if let Expr::Str(s) = idx.as_ref() {
                    if is_identifier(s) {
                        return write!(f, "{base}.{s}");
                    }
                }
                write!(f, "{base}[{idx}]")
            }
            Expr::Call(callee, args) => {
                write!(f, "{callee}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Expr::Lambda(params, body) => {
                writeln!(f, "function({})", params.join(", "))?;
                fmt_block(body, f, 1)?;
                write!(f, "end")
            }
            // Fully parenthesize: simple and unambiguous.
            Expr::Bin(op, a, b) => write!(f, "({a} {} {b})", op.symbol()),
            Expr::Un(UnOp::Neg, e) => write!(f, "(-{e})"),
            Expr::Un(UnOp::Not, e) => write!(f, "(not {e})"),
            Expr::Un(UnOp::Len, e) => write!(f, "(#{e})"),
        }
    }
}

/// Whether `s` can be written as a bare `.field` accessor / table key.
pub fn is_identifier(s: &str) -> bool {
    !s.is_empty()
        && s.bytes()
            .next()
            .map(|b| b.is_ascii_alphabetic() || b == b'_')
            .unwrap_or(false)
        && s.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_')
        && !matches!(
            s,
            "and"
                | "break"
                | "do"
                | "else"
                | "elseif"
                | "end"
                | "false"
                | "for"
                | "function"
                | "if"
                | "in"
                | "local"
                | "nil"
                | "not"
                | "or"
                | "repeat"
                | "return"
                | "then"
                | "true"
                | "until"
                | "while"
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identifier_check() {
        assert!(is_identifier("foo_1"));
        assert!(!is_identifier("1foo"));
        assert!(!is_identifier(""));
        assert!(!is_identifier("while"));
        assert!(!is_identifier("a-b"));
    }

    #[test]
    fn display_exprs() {
        let e = Expr::Bin(
            BinOp::Add,
            Box::new(Expr::Num(1.0)),
            Box::new(Expr::Bin(
                BinOp::Mul,
                Box::new(Expr::Var("x".into())),
                Box::new(Expr::Num(2.0)),
            )),
        );
        assert_eq!(e.to_string(), "(1 + (x * 2))");
    }

    #[test]
    fn display_field_vs_index() {
        let field = Expr::Index(
            Box::new(Expr::Var("t".into())),
            Box::new(Expr::Str("name".into())),
        );
        assert_eq!(field.to_string(), "t.name");
        let idx = Expr::Index(
            Box::new(Expr::Var("t".into())),
            Box::new(Expr::Str("not an id".into())),
        );
        assert_eq!(idx.to_string(), "t[\"not an id\"]");
    }

    #[test]
    fn display_statements() {
        let s = Stmt::NumFor {
            var: "i".into(),
            start: Expr::Num(1.0),
            stop: Expr::Num(10.0),
            step: None,
            body: vec![Stmt::Break],
        };
        assert_eq!(s.to_string(), "for i = 1, 10 do\n    break\nend\n");
    }

    #[test]
    fn string_escaping_round_trips_visually() {
        let e = Expr::Str("a\"b\\c\nd".into());
        assert_eq!(e.to_string(), "\"a\\\"b\\\\c\\nd\"");
    }
}
