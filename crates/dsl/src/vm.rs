//! Stack VM executing compiled Cephalo chunks.
//!
//! Mirrors [`crate::interp::Interp`]'s public surface (load/call/globals/
//! output/sandbox) so consumers can switch engines behind
//! [`crate::engine::DslEngine`]. Semantics are defined by the tree-walking
//! interpreter; the differential harness (`crate::testgen`, the
//! `differential` integration test) holds this implementation to it.
//!
//! Layout at runtime: one shared operand stack; a frame's plain locals
//! live at `stack[base .. base + n_slots]`; closure-captured locals live
//! in per-frame `Rc<RefCell<Value>>` boxes so nested closures share the
//! same storage the interpreter's scope chain provides. Iterator state
//! for generic `for` lives on a parallel stack of table snapshots. Every
//! executed opcode costs one sandbox step; call depth is charged per
//! script-function frame (the top-level chunk frame is free, as in the
//! interpreter). The operand and frame stacks are reusable buffers owned
//! by the [`Vm`], but [`Vm::run`] clears them on every exit — including
//! error returns — so a budget trip cannot leave poisoned state behind:
//! the next entry point starts from an empty stack. The dispatch loop
//! keeps the active frame's `ip`/`base`/closure in locals, writing `ip`
//! back only across calls, so straight-line opcodes never touch the
//! frame stack.

use std::any::Any;
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

use crate::compile::{self, Chunk, Op, Proto, UpvalDesc};
use crate::interp::{coerce_str, compare, num_of, to_key, RtError, Sandbox};
use crate::value::{HostCtx, Key, Native, NativeFn, Value};
use crate::Script;

/// A compiled function bound to its captured upvalues.
pub struct Closure {
    /// The compiled body.
    pub proto: Rc<Proto>,
    /// Captured boxes, parallel to `proto.upvals`.
    pub upvals: Vec<Rc<RefCell<Value>>>,
    /// Global slots, parallel to `proto.names`: resolved against the
    /// owning [`Vm`]'s globals table when the closure is created, so
    /// `LoadGlobal`/`StoreGlobal` index a vector instead of hashing the
    /// name on every access.
    pub(crate) slots: Rc<[u32]>,
}

impl fmt::Debug for Closure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Matches the tree-walker's `<function name(params)>` rendering so
        // `tostring(f)` is engine-independent.
        write!(
            f,
            "<function {}({})>",
            self.proto.name,
            self.proto.params.join(", ")
        )
    }
}

struct Frame {
    closure: Rc<Closure>,
    ip: usize,
    base: usize,
    /// Box slots; `None` until the declaration's `NewBox` executes.
    boxes: Vec<Option<Rc<RefCell<Value>>>>,
    /// Iterator-stack watermark to restore on return.
    iter_base: usize,
    /// Whether this frame counted against `Sandbox::max_depth`.
    depth_counted: bool,
}

/// Multiply-xor hasher for the globals table. Global names are short
/// interned strings hashed on every `LoadGlobal`/`StoreGlobal`; SipHash's
/// fixed setup cost dominates at that key size, so the VM uses an
/// FxHash-style mix instead. Not DoS-resistant — fine for a table whose
/// keys come from compiled scripts, not network input.
#[derive(Default)]
struct FxHasher(u64);

impl std::hash::Hasher for FxHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
        for &b in bytes {
            self.0 = (self.0.rotate_left(5) ^ u64::from(b)).wrapping_mul(SEED);
        }
    }
}

type GlobalNames = HashMap<Rc<str>, u32, std::hash::BuildHasherDefault<FxHasher>>;

/// A Cephalo bytecode VM instance: globals, natives, output buffer, and
/// sandbox accounting — the compiled counterpart of [`crate::Interp`].
///
/// Globals are slotted: `global_names` interns each name to an index into
/// `global_vals` the first time it is seen, and closures carry their
/// name→slot resolution (see [`Closure::slots`]), so steady-state global
/// access never hashes. Slots are never removed; assigning `nil` just
/// stores `nil`, which reads back the same as an unknown name.
pub struct Vm {
    global_names: GlobalNames,
    global_vals: Vec<Value>,
    sandbox: Sandbox,
    output: Vec<String>,
    steps_left: u64,
    depth: u32,
    /// Reusable operand stack; always left empty between runs.
    stack_buf: Vec<Value>,
    /// Reusable frame stack; always left empty between runs.
    frames_buf: Vec<Frame>,
}

impl Default for Vm {
    fn default() -> Self {
        Self::new()
    }
}

impl Vm {
    /// Creates a VM with the default sandbox and standard library.
    pub fn new() -> Vm {
        Vm::with_sandbox(Sandbox::default())
    }

    /// Creates a VM with explicit sandbox limits.
    pub fn with_sandbox(sandbox: Sandbox) -> Vm {
        let mut vm = Vm {
            global_names: GlobalNames::default(),
            global_vals: Vec::new(),
            sandbox,
            output: Vec::new(),
            steps_left: 0,
            depth: 0,
            stack_buf: Vec::with_capacity(64),
            frames_buf: Vec::with_capacity(8),
        };
        for (name, f) in crate::stdlib::natives() {
            vm.register(name, f);
        }
        vm
    }

    /// Interns a global name, allocating a nil-valued slot on first use.
    fn slot(&mut self, name: &str) -> u32 {
        if let Some(&s) = self.global_names.get(name) {
            return s;
        }
        let s = u32::try_from(self.global_vals.len()).expect("global slot count fits u32");
        self.global_names.insert(Rc::from(name), s);
        self.global_vals.push(Value::Nil);
        s
    }

    /// Resolves a proto's global-name pool to slots for a new closure.
    fn resolve_slots(&mut self, proto: &Proto) -> Rc<[u32]> {
        proto.names.iter().map(|n| self.slot(n)).collect()
    }

    /// Registers a native function under a global name.
    pub fn register(&mut self, name: &str, f: NativeFn) {
        self.set_global(
            name,
            Value::Native(Rc::new(Native {
                name: name.to_string(),
                f,
            })),
        );
    }

    /// Sets a global variable.
    pub fn set_global(&mut self, name: &str, v: Value) {
        let s = self.slot(name);
        self.global_vals[s as usize] = v;
    }

    /// Reads a global variable (`nil` if unset).
    pub fn global(&self, name: &str) -> Value {
        self.global_names
            .get(name)
            .map(|&s| self.global_vals[s as usize].clone())
            .unwrap_or(Value::Nil)
    }

    /// Lines produced by `print`/`log` since the last [`Vm::take_output`].
    pub fn take_output(&mut self) -> Vec<String> {
        std::mem::take(&mut self.output)
    }

    /// Whether a global function named `name` exists.
    pub fn has_function(&self, name: &str) -> bool {
        matches!(self.global(name), Value::Closure(_) | Value::Native { .. })
    }

    /// Compiles and executes a script's top level without host state.
    ///
    /// # Errors
    ///
    /// Propagates compile errors (as runtime errors, with the same message
    /// the interpreter would raise at execution time) and any runtime
    /// error, including sandbox violations.
    pub fn load(&mut self, script: &Script) -> Result<(), RtError> {
        self.load_with(script, &mut ())
    }

    /// Compiles and executes a script's top level with host state.
    pub fn load_with(&mut self, script: &Script, host: &mut dyn Any) -> Result<(), RtError> {
        let chunk = compile::compile(script).map_err(|e| RtError::new(e.message))?;
        self.load_chunk_with(&chunk, host)
    }

    /// Executes an already-compiled chunk's top level (lets callers cache
    /// compilation across evals).
    pub fn load_chunk_with(&mut self, chunk: &Chunk, host: &mut dyn Any) -> Result<(), RtError> {
        self.steps_left = self.sandbox.max_steps;
        self.depth = 0;
        let main = Rc::new(Closure {
            proto: Rc::clone(&chunk.main),
            upvals: Vec::new(),
            slots: self.resolve_slots(&chunk.main),
        });
        self.run(main, &[], host, false)?;
        Ok(())
    }

    /// Calls the global function `name` with `args`.
    ///
    /// # Errors
    ///
    /// Fails if the global is not callable or the call raises.
    pub fn call(
        &mut self,
        name: &str,
        args: &[Value],
        host: &mut dyn Any,
    ) -> Result<Value, RtError> {
        let f = self.global(name);
        if matches!(f, Value::Nil) {
            return Err(RtError::new(format!("no such function `{name}`")));
        }
        self.steps_left = self.sandbox.max_steps;
        self.depth = 0;
        match &f {
            Value::Closure(c) => self.run(Rc::clone(c), args, host, true),
            _ => self.call_value(&f, args.to_vec(), host),
        }
    }

    /// Calls an arbitrary callable value.
    ///
    /// # Errors
    ///
    /// Fails if `f` is not callable or the call raises.
    pub fn call_value(
        &mut self,
        f: &Value,
        args: Vec<Value>,
        host: &mut dyn Any,
    ) -> Result<Value, RtError> {
        match f {
            Value::Closure(c) => self.run(Rc::clone(c), &args, host, true),
            Value::Native(n) => {
                let mut ctx = HostCtx {
                    host,
                    output: &mut self.output,
                };
                (n.f)(&mut ctx, &args)
            }
            Value::Func(_) => Err(RtError::new(
                "attempt to call a tree-walker function from the bytecode VM",
            )),
            other => Err(RtError::new(format!(
                "attempt to call a {} value",
                other.type_name()
            ))),
        }
    }

    /// Pushes a call frame whose `argc` arguments are already the top of
    /// `stack`; pads missing parameters with nil and drops extras
    /// (interp rules).
    fn push_frame(
        &mut self,
        stack: &mut Vec<Value>,
        frames: &mut Vec<Frame>,
        iter_base: usize,
        closure: Rc<Closure>,
        argc: usize,
        counted: bool,
    ) -> Result<(), RtError> {
        if counted {
            if self.depth >= self.sandbox.max_depth {
                return Err(RtError::new("call depth limit exceeded"));
            }
            self.depth += 1;
        }
        let base = stack.len() - argc;
        let np = closure.proto.params.len();
        stack.truncate(base + argc.min(np));
        stack.resize(base + closure.proto.n_slots as usize, Value::Nil);
        let boxes = vec![None; closure.proto.n_boxes as usize];
        frames.push(Frame {
            closure,
            ip: 0,
            base,
            boxes,
            iter_base,
            depth_counted: counted,
        });
        Ok(())
    }

    /// Entry point around [`Vm::run_inner`]: borrows the reusable operand
    /// and frame buffers and returns them **cleared** on every exit, so an
    /// error — including a sandbox trip — cannot poison later entries.
    fn run(
        &mut self,
        closure: Rc<Closure>,
        args: &[Value],
        host: &mut dyn Any,
        counted: bool,
    ) -> Result<Value, RtError> {
        let mut stack = std::mem::take(&mut self.stack_buf);
        let mut frames = std::mem::take(&mut self.frames_buf);
        let result = self.run_inner(&mut stack, &mut frames, closure, args, host, counted);
        stack.clear();
        frames.clear();
        self.stack_buf = stack;
        self.frames_buf = frames;
        result
    }

    /// The dispatch loop. The active frame's `ip`, `base`, and closure are
    /// cached in locals (`ip` is written back to the frame only across
    /// calls), so straight-line opcodes never touch the frame stack. The
    /// iterator stack is a local: any error return drops it whole.
    fn run_inner(
        &mut self,
        stack: &mut Vec<Value>,
        frames: &mut Vec<Frame>,
        closure: Rc<Closure>,
        args: &[Value],
        host: &mut dyn Any,
        counted: bool,
    ) -> Result<Value, RtError> {
        let mut iters: Vec<std::vec::IntoIter<(Key, Value)>> = Vec::new();
        stack.extend_from_slice(args);
        self.push_frame(stack, frames, 0, closure, args.len(), counted)?;
        let mut cl = Rc::clone(&frames.last().expect("frame").closure);
        let mut ip: usize = 0;
        let mut base: usize = frames.last().expect("frame").base;
        loop {
            if self.steps_left == 0 {
                return Err(RtError::new("instruction budget exceeded"));
            }
            self.steps_left -= 1;
            let op = cl.proto.code[ip];
            ip += 1;
            match op {
                Op::Const(i) => {
                    let v = cl.proto.consts[i as usize].clone();
                    stack.push(v);
                }
                Op::Nil => stack.push(Value::Nil),
                Op::True => stack.push(Value::Bool(true)),
                Op::False => stack.push(Value::Bool(false)),
                Op::Pop => {
                    stack.pop().expect("value to pop");
                }
                Op::LoadLocal(i) => {
                    let v = stack[base + i as usize].clone();
                    stack.push(v);
                }
                Op::StoreLocal(i) => {
                    let v = stack.pop().expect("value to store");
                    stack[base + i as usize] = v;
                }
                Op::LoadBox(i) => {
                    let v = frames.last().expect("frame").boxes[i as usize]
                        .as_ref()
                        .expect("box bound at declaration")
                        .borrow()
                        .clone();
                    stack.push(v);
                }
                Op::StoreBox(i) => {
                    let v = stack.pop().expect("value to store");
                    *frames.last().expect("frame").boxes[i as usize]
                        .as_ref()
                        .expect("box bound at declaration")
                        .borrow_mut() = v;
                }
                Op::NewBox(i) => {
                    let v = stack.pop().expect("value to box");
                    frames.last_mut().expect("frame").boxes[i as usize] =
                        Some(Rc::new(RefCell::new(v)));
                }
                Op::LoadUpval(i) => {
                    let v = cl.upvals[i as usize].borrow().clone();
                    stack.push(v);
                }
                Op::StoreUpval(i) => {
                    let v = stack.pop().expect("value to store");
                    *cl.upvals[i as usize].borrow_mut() = v;
                }
                Op::LoadGlobal(i) => {
                    let v = self.global_vals[cl.slots[i as usize] as usize].clone();
                    stack.push(v);
                }
                Op::StoreGlobal(i) => {
                    let v = stack.pop().expect("value to store");
                    self.global_vals[cl.slots[i as usize] as usize] = v;
                }
                Op::NewTable => stack.push(Value::table()),
                Op::TablePush => {
                    let v = stack.pop().expect("value to append");
                    match stack.last() {
                        Some(Value::Table(t)) => t.borrow_mut().push(v),
                        _ => unreachable!("table literal under construction"),
                    }
                }
                Op::TableSetConst(k) => {
                    let v = stack.pop().expect("value to set");
                    let key = cl.proto.keys[k as usize].clone();
                    match stack.last() {
                        Some(Value::Table(t)) => t.borrow_mut().set(key, v),
                        _ => unreachable!("table literal under construction"),
                    }
                }
                Op::GetIndex => {
                    let idx = stack.pop().expect("index");
                    let base_v = stack.pop().expect("indexed value");
                    match base_v {
                        Value::Table(t) => {
                            let key = to_key(&idx)?;
                            let v = t.borrow().get(&key);
                            stack.push(v);
                        }
                        other => {
                            return Err(RtError::new(format!(
                                "attempt to index a {} value",
                                other.type_name()
                            )))
                        }
                    }
                }
                Op::GetConst(k) => {
                    let base_v = stack.pop().expect("indexed value");
                    match base_v {
                        Value::Table(t) => {
                            let key = &cl.proto.keys[k as usize];
                            let v = t.borrow().get(key);
                            stack.push(v);
                        }
                        other => {
                            return Err(RtError::new(format!(
                                "attempt to index a {} value",
                                other.type_name()
                            )))
                        }
                    }
                }
                Op::SetIndex => {
                    let idx = stack.pop().expect("index");
                    let base_v = stack.pop().expect("indexed value");
                    let v = stack.pop().expect("assigned value");
                    // Key conversion precedes the base-type check, as in
                    // the interpreter's assignment path.
                    let key = to_key(&idx)?;
                    match base_v {
                        Value::Table(t) => t.borrow_mut().set(key, v),
                        other => {
                            return Err(RtError::new(format!(
                                "attempt to index a {} value",
                                other.type_name()
                            )))
                        }
                    }
                }
                Op::SetConst(k) => {
                    let base_v = stack.pop().expect("indexed value");
                    let v = stack.pop().expect("assigned value");
                    let key = cl.proto.keys[k as usize].clone();
                    match base_v {
                        Value::Table(t) => t.borrow_mut().set(key, v),
                        other => {
                            return Err(RtError::new(format!(
                                "attempt to index a {} value",
                                other.type_name()
                            )))
                        }
                    }
                }
                Op::Add | Op::Sub | Op::Mul | Op::Div | Op::Mod | Op::Pow => {
                    let rhs = stack.pop().expect("rhs");
                    let lhs = stack.pop().expect("lhs");
                    let x = num_of(&lhs)?;
                    let y = num_of(&rhs)?;
                    let r = match op {
                        Op::Add => x + y,
                        Op::Sub => x - y,
                        Op::Mul => x * y,
                        Op::Div => x / y,
                        // Lua semantics: result has the sign of the divisor.
                        Op::Mod => x - (x / y).floor() * y,
                        Op::Pow => x.powf(y),
                        _ => unreachable!(),
                    };
                    stack.push(Value::Num(r));
                }
                Op::Concat => {
                    let rhs = stack.pop().expect("rhs");
                    let lhs = stack.pop().expect("lhs");
                    let sa = coerce_str(&lhs)?;
                    let sb = coerce_str(&rhs)?;
                    stack.push(Value::str(format!("{sa}{sb}")));
                }
                Op::Eq | Op::Ne => {
                    let rhs = stack.pop().expect("rhs");
                    let lhs = stack.pop().expect("lhs");
                    let eq = lhs == rhs;
                    stack.push(Value::Bool(if matches!(op, Op::Eq) { eq } else { !eq }));
                }
                Op::Lt | Op::Le | Op::Gt | Op::Ge => {
                    let rhs = stack.pop().expect("rhs");
                    let lhs = stack.pop().expect("lhs");
                    let ord = compare(&lhs, &rhs)?;
                    use std::cmp::Ordering;
                    stack.push(Value::Bool(match op {
                        Op::Lt => ord == Ordering::Less,
                        Op::Le => ord != Ordering::Greater,
                        Op::Gt => ord == Ordering::Greater,
                        Op::Ge => ord != Ordering::Less,
                        _ => unreachable!(),
                    }));
                }
                Op::Neg => {
                    let v = stack.pop().expect("operand");
                    stack.push(Value::Num(-num_of(&v)?));
                }
                Op::Not => {
                    let v = stack.pop().expect("operand");
                    stack.push(Value::Bool(!v.truthy()));
                }
                Op::Len => {
                    let v = stack.pop().expect("operand");
                    match &v {
                        Value::Table(t) => stack.push(Value::Num(t.borrow().len() as f64)),
                        Value::Str(s) => stack.push(Value::Num(s.len() as f64)),
                        other => {
                            return Err(RtError::new(format!(
                                "attempt to get length of a {} value",
                                other.type_name()
                            )))
                        }
                    }
                }
                Op::CheckNum => {
                    num_of(stack.last().expect("operand"))?;
                }
                Op::Jump(t) => ip = t as usize,
                Op::JumpIfFalse(t) => {
                    let v = stack.pop().expect("condition");
                    if !v.truthy() {
                        ip = t as usize;
                    }
                }
                Op::JumpIfFalsePeek(t) => {
                    if stack.last().expect("operand").truthy() {
                        stack.pop();
                    } else {
                        ip = t as usize;
                    }
                }
                Op::JumpIfTruePeek(t) => {
                    if stack.last().expect("operand").truthy() {
                        ip = t as usize;
                    } else {
                        stack.pop();
                    }
                }
                Op::ForPrep { slot, exit } => {
                    // Operands were verified numeric by CheckNum.
                    let step = stack.pop().and_then(|v| v.as_num()).expect("for step");
                    let stop = stack.pop().and_then(|v| v.as_num()).expect("for stop");
                    let start = stack.pop().and_then(|v| v.as_num()).expect("for start");
                    if step == 0.0 {
                        return Err(RtError::new("for loop step is zero"));
                    }
                    let b = base + slot as usize;
                    stack[b] = Value::Num(start);
                    stack[b + 1] = Value::Num(stop);
                    stack[b + 2] = Value::Num(step);
                    let in_range = (step > 0.0 && start <= stop) || (step < 0.0 && start >= stop);
                    if !in_range {
                        ip = exit as usize;
                    }
                }
                Op::ForLoop { slot, back } => {
                    let b = base + slot as usize;
                    let step = stack[b + 2].as_num().expect("for step");
                    let stop = stack[b + 1].as_num().expect("for stop");
                    let i = stack[b].as_num().expect("for control") + step;
                    stack[b] = Value::Num(i);
                    if (step > 0.0 && i <= stop) || (step < 0.0 && i >= stop) {
                        ip = back as usize;
                    }
                }
                Op::IterNew => {
                    let v = stack.pop().expect("iterable");
                    match v {
                        Value::Table(t) => {
                            // Snapshot entries so the body may mutate the
                            // table, as the interpreter does.
                            let entries: Vec<(Key, Value)> = t.borrow().iter().collect();
                            iters.push(entries.into_iter());
                        }
                        other => {
                            return Err(RtError::new(format!(
                                "attempt to iterate a {} value",
                                other.type_name()
                            )))
                        }
                    }
                }
                Op::IterNext(t) => match iters.last_mut().expect("open iterator").next() {
                    Some((k, v)) => {
                        stack.push(match k {
                            Key::Int(i) => Value::Num(i as f64),
                            Key::Str(s) => Value::str(s),
                        });
                        stack.push(v);
                    }
                    None => {
                        iters.pop();
                        ip = t as usize;
                    }
                },
                Op::IterDrop => {
                    iters.pop().expect("open iterator");
                }
                Op::Call(n) => {
                    // Remove the callee from under its arguments; the
                    // arguments stay in place and become the new frame's
                    // leading slots (no per-call argument Vec).
                    let at = stack.len() - n as usize;
                    let callee = stack.remove(at - 1);
                    match callee {
                        Value::Closure(c) => {
                            frames.last_mut().expect("frame").ip = ip;
                            self.push_frame(stack, frames, iters.len(), c, n as usize, true)?;
                            let top = frames.last().expect("frame");
                            cl = Rc::clone(&top.closure);
                            ip = 0;
                            base = top.base;
                        }
                        Value::Native(nat) => {
                            let mut ctx = HostCtx {
                                host,
                                output: &mut self.output,
                            };
                            let v = (nat.f)(&mut ctx, &stack[at - 1..])?;
                            stack.truncate(at - 1);
                            stack.push(v);
                        }
                        Value::Func(_) => {
                            return Err(RtError::new(
                                "attempt to call a tree-walker function from the bytecode VM",
                            ))
                        }
                        other => {
                            return Err(RtError::new(format!(
                                "attempt to call a {} value",
                                other.type_name()
                            )))
                        }
                    }
                }
                Op::Ret | Op::RetNil => {
                    let ret = if matches!(op, Op::Ret) {
                        stack.pop().expect("return value")
                    } else {
                        Value::Nil
                    };
                    let frame = frames.pop().expect("frame");
                    stack.truncate(frame.base);
                    iters.truncate(frame.iter_base);
                    if frame.depth_counted {
                        self.depth -= 1;
                    }
                    match frames.last() {
                        None => return Ok(ret),
                        Some(top) => {
                            cl = Rc::clone(&top.closure);
                            ip = top.ip;
                            base = top.base;
                            stack.push(ret);
                        }
                    }
                }
                Op::Closure(i) => {
                    let proto = Rc::clone(&cl.proto.protos[i as usize]);
                    let slots = self.resolve_slots(&proto);
                    let new_closure = {
                        let frame = frames.last().expect("frame");
                        let mut upvals = Vec::with_capacity(proto.upvals.len());
                        for d in &proto.upvals {
                            upvals.push(match d {
                                UpvalDesc::ParentBox(b) => Rc::clone(
                                    frame.boxes[*b as usize]
                                        .as_ref()
                                        .expect("captured box bound before closure creation"),
                                ),
                                UpvalDesc::ParentUpval(u) => Rc::clone(&cl.upvals[*u as usize]),
                            });
                        }
                        Closure {
                            proto,
                            upvals,
                            slots,
                        }
                    };
                    stack.push(Value::Closure(Rc::new(new_closure)));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vm {
        let script = Script::compile(src).unwrap();
        let mut vm = Vm::new();
        vm.load(&script).unwrap();
        vm
    }

    fn eval_global(src: &str, name: &str) -> Value {
        run(src).global(name)
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(eval_global("x = 1 + 2 * 3 - 4 / 2", "x"), Value::from(5.0));
        assert_eq!(eval_global("x = 2 ^ 10", "x"), Value::from(1024.0));
        assert_eq!(eval_global("x = 7 % 3", "x"), Value::from(1.0));
        assert_eq!(eval_global("x = -7 % 3", "x"), Value::from(2.0));
    }

    #[test]
    fn short_circuit_and_or() {
        assert_eq!(eval_global("x = nil or 5", "x"), Value::from(5.0));
        assert_eq!(
            eval_global("x = false and crash()", "x"),
            Value::from(false)
        );
        assert_eq!(eval_global("x = 1 and 2", "x"), Value::from(2.0));
    }

    #[test]
    fn control_flow_matches_interpreter() {
        let src = "
            x = 0
            while true do
                x = x + 1
                if x >= 5 then break end
            end
            y = 0 repeat y = y + 1 until y >= 3
            s = 0 for i = 1, 10 do s = s + i end
            r = 0 for i = 10, 1, -2 do r = r + i end
        ";
        let vm = run(src);
        assert_eq!(vm.global("x"), Value::from(5.0));
        assert_eq!(vm.global("y"), Value::from(3.0));
        assert_eq!(vm.global("s"), Value::from(55.0));
        assert_eq!(vm.global("r"), Value::from(30.0));
    }

    #[test]
    fn generic_for_iterates_array_then_map() {
        let src = "
            t = {10, 20, small = 1, big = 2}
            ks = \"\"
            total = 0
            for k, v in t do
                ks = ks .. k .. \";\"
                total = total + v
            end
        ";
        let vm = run(src);
        assert_eq!(vm.global("ks"), Value::str("1;2;big;small;"));
        assert_eq!(vm.global("total"), Value::from(33.0));
    }

    #[test]
    fn break_inside_generic_for_drops_iterator() {
        let src = "
            n = 0
            for k, v in {1, 2, 3, 4} do
                n = n + v
                if v >= 2 then break end
            end
            -- a second loop must start from a clean iterator stack
            m = 0
            for k, v in {5, 6} do m = m + v end
        ";
        let vm = run(src);
        assert_eq!(vm.global("n"), Value::from(3.0));
        assert_eq!(vm.global("m"), Value::from(11.0));
    }

    #[test]
    fn functions_recursion_and_closures() {
        let src = "
            function fib(n)
                if n < 2 then return n end
                return fib(n - 1) + fib(n - 2)
            end
            x = fib(15)
            function counter()
                local n = 0
                return function()
                    n = n + 1
                    return n
                end
            end
            c = counter()
            a = c()
            b = c()
        ";
        let vm = run(src);
        assert_eq!(vm.global("x"), Value::from(610.0));
        assert_eq!(vm.global("a"), Value::from(1.0));
        assert_eq!(vm.global("b"), Value::from(2.0));
    }

    #[test]
    fn two_closures_share_one_box() {
        let src = "
            function pair()
                local n = 0
                local t = {}
                t.inc = function() n = n + 1 return n end
                t.get = function() return n end
                return t
            end
            p = pair()
            a = p.inc()
            b = p.inc()
            g = p.get()
        ";
        let vm = run(src);
        assert_eq!(vm.global("a"), Value::from(1.0));
        assert_eq!(vm.global("b"), Value::from(2.0));
        assert_eq!(vm.global("g"), Value::from(2.0));
    }

    #[test]
    fn loop_iterations_get_fresh_boxes() {
        // Each iteration's captured local is a distinct box, matching the
        // interpreter's fresh per-iteration scope.
        let src = "
            fs = {}
            for i = 1, 3 do
                local v = i * 10
                insert(fs, function() return v end)
            end
            a = fs[1]()
            b = fs[2]()
            c = fs[3]()
        ";
        let vm = run(src);
        assert_eq!(vm.global("a"), Value::from(10.0));
        assert_eq!(vm.global("b"), Value::from(20.0));
        assert_eq!(vm.global("c"), Value::from(30.0));
    }

    #[test]
    fn call_entry_point_with_args() {
        let script = Script::compile("function add(a, b) return a + b end").unwrap();
        let mut vm = Vm::new();
        vm.load(&script).unwrap();
        let out = vm
            .call("add", &[Value::from(2.0), Value::from(3.0)], &mut ())
            .unwrap();
        assert_eq!(out, Value::from(5.0));
        // Missing args bind nil → type error inside; extra args dropped.
        assert!(vm.call("add", &[Value::from(1.0)], &mut ()).is_err());
        let out = vm
            .call(
                "add",
                &[Value::from(1.0), Value::from(2.0), Value::from(9.0)],
                &mut (),
            )
            .unwrap();
        assert_eq!(out, Value::from(3.0));
    }

    #[test]
    fn missing_function_errors() {
        let mut vm = Vm::new();
        let err = vm.call("nope", &[], &mut ()).unwrap_err();
        assert!(err.message.contains("no such function"));
    }

    #[test]
    fn native_function_with_host_state() {
        let mut vm = Vm::new();
        vm.register(
            "bump",
            Rc::new(|ctx, args| {
                let counter = ctx.host.downcast_mut::<u32>().expect("host is u32");
                *counter += args[0].as_num().unwrap_or(0.0) as u32;
                Ok(Value::Num(*counter as f64))
            }),
        );
        let script = Script::compile("function go() return bump(5) + bump(1) end").unwrap();
        let mut host = 10u32;
        vm.load(&script).unwrap();
        let out = vm.call("go", &[], &mut host).unwrap();
        assert_eq!(host, 16);
        assert_eq!(out, Value::from(31.0));
    }

    #[test]
    fn instruction_budget_stops_infinite_loops() {
        let script = Script::compile("while true do x = 1 end").unwrap();
        let mut vm = Vm::with_sandbox(Sandbox {
            max_steps: 10_000,
            max_depth: 16,
        });
        let err = vm.load(&script).unwrap_err();
        assert!(err.message.contains("budget"));
    }

    #[test]
    fn call_depth_limit_stops_runaway_recursion() {
        let script = Script::compile("function f() return f() end\n").unwrap();
        let mut vm = Vm::with_sandbox(Sandbox {
            max_steps: 1_000_000,
            max_depth: 32,
        });
        vm.load(&script).unwrap();
        let err = vm.call("f", &[], &mut ()).unwrap_err();
        assert!(err.message.contains("depth"));
    }

    #[test]
    fn budget_resets_between_calls() {
        let script = Script::compile(
            "function burn() local s = 0 for i = 1, 100 do s = s + i end return s end",
        )
        .unwrap();
        let mut vm = Vm::with_sandbox(Sandbox {
            max_steps: 5_000,
            max_depth: 8,
        });
        vm.load(&script).unwrap();
        for _ in 0..50 {
            vm.call("burn", &[], &mut ()).unwrap();
        }
    }

    #[test]
    fn type_errors_match_interpreter_messages() {
        let check = |src: &str, needle: &str| {
            let script = Script::compile(src).unwrap();
            let err = Vm::new().load(&script).unwrap_err();
            assert!(
                err.message.contains(needle),
                "{src}: {} !~ {needle}",
                err.message
            );
        };
        check("x = 1 + \"a\"", "expected a number");
        check("x = nil .. {}", "concatenate");
        check("x = {} < {}", "compare");
        check("x = nil[1]", "index");
        check("local f = 3 f()", "call");
        check("x = #5", "length");
        check("for i = 1, 10, 0 do break end", "step is zero");
    }

    #[test]
    fn stdlib_is_shared_with_interpreter() {
        let src = "
            a = floor(2.7) b = max(1, 9, 3) t = split(\"x:y\", \":\")
            n = #t
            print(\"hi\", 1)
        ";
        let mut vm = run(src);
        assert_eq!(vm.global("a"), Value::from(2.0));
        assert_eq!(vm.global("b"), Value::from(9.0));
        assert_eq!(vm.global("n"), Value::from(2.0));
        assert_eq!(vm.take_output(), vec!["hi\t1"]);
    }

    #[test]
    fn tables_nested_access_and_rhs_first_assignment() {
        let src = "
            t = {inner = {x = 1}}
            t.inner.x = t.inner.x + 41
            t[1] = \"first\"
            v = t.inner.x
            w = t[1]
        ";
        let vm = run(src);
        assert_eq!(vm.global("v"), Value::from(42.0));
        assert_eq!(vm.global("w"), Value::str("first"));
    }

    #[test]
    fn function_display_matches_interpreter() {
        let vm = run("function f(a, b) return a end\ns = tostring(f)");
        assert_eq!(vm.global("s"), Value::str("<function f(a, b)>"));
    }
}
