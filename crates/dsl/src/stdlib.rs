//! Standard library installed into every Cephalo interpreter.
//!
//! A deliberately small, deterministic surface: no OS access, no wall-clock
//! time, no ambient randomness. Anything a policy script needs from its
//! daemon arrives through embedding-specific natives instead.

use std::rc::Rc;

use crate::interp::{Interp, RtError};
use crate::value::{fmt_num, HostCtx, Key, NativeFn, Value};

fn arg(args: &[Value], i: usize) -> Value {
    args.get(i).cloned().unwrap_or(Value::Nil)
}

fn num_arg(name: &str, args: &[Value], i: usize) -> Result<f64, RtError> {
    arg(args, i)
        .as_num()
        .ok_or_else(|| RtError::new(format!("{name}: argument {} must be a number", i + 1)))
}

/// Installs the standard library into `interp`.
pub fn install(interp: &mut Interp) {
    for (name, f) in natives() {
        interp.register(name, f);
    }
}

/// The standard library as `(name, fn)` pairs — the single definition both
/// engines (tree-walking [`Interp`] and the bytecode [`crate::vm::Vm`])
/// install, so stdlib behavior cannot diverge between them.
pub(crate) fn natives() -> Vec<(&'static str, NativeFn)> {
    let mut interp = Registrar(Vec::new());

    // print(...) — joins arguments with tabs into the output buffer.
    interp.register(
        "print",
        Rc::new(|ctx: &mut HostCtx<'_>, args: &[Value]| {
            let line = args
                .iter()
                .map(Value::display)
                .collect::<Vec<_>>()
                .join("\t");
            ctx.output.push(line);
            Ok(Value::Nil)
        }),
    );

    // tostring(v)
    interp.register(
        "tostring",
        Rc::new(|_, args| Ok(Value::str(arg(args, 0).display()))),
    );

    // tonumber(v) — nil on failure, like Lua.
    interp.register(
        "tonumber",
        Rc::new(|_, args| {
            Ok(match arg(args, 0) {
                Value::Num(n) => Value::Num(n),
                Value::Str(s) => s
                    .trim()
                    .parse::<f64>()
                    .map(Value::Num)
                    .unwrap_or(Value::Nil),
                _ => Value::Nil,
            })
        }),
    );

    // type(v)
    interp.register(
        "type",
        Rc::new(|_, args| Ok(Value::str(arg(args, 0).type_name()))),
    );

    // error(msg) — raises a runtime error.
    interp.register(
        "error",
        Rc::new(|_, args| Err(RtError::new(arg(args, 0).display()))),
    );

    // assert(cond, [msg])
    interp.register(
        "assert",
        Rc::new(|_, args| {
            if arg(args, 0).truthy() {
                Ok(arg(args, 0))
            } else {
                let msg = match arg(args, 1) {
                    Value::Nil => "assertion failed".to_string(),
                    v => v.display(),
                };
                Err(RtError::new(msg))
            }
        }),
    );

    // Math.
    macro_rules! unary_math {
        ($name:literal, $f:expr) => {
            interp.register(
                $name,
                Rc::new(|_, args| {
                    let x = num_arg($name, args, 0)?;
                    #[allow(clippy::redundant_closure_call)]
                    Ok(Value::Num(($f)(x)))
                }),
            );
        };
    }
    unary_math!("floor", |x: f64| x.floor());
    unary_math!("ceil", |x: f64| x.ceil());
    unary_math!("abs", |x: f64| x.abs());
    unary_math!("sqrt", |x: f64| x.sqrt());
    unary_math!("exp", |x: f64| x.exp());
    unary_math!("log", |x: f64| x.ln());

    interp.register(
        "min",
        Rc::new(|_, args| {
            let mut best = num_arg("min", args, 0)?;
            for (i, _) in args.iter().enumerate().skip(1) {
                best = best.min(num_arg("min", args, i)?);
            }
            Ok(Value::Num(best))
        }),
    );
    interp.register(
        "max",
        Rc::new(|_, args| {
            let mut best = num_arg("max", args, 0)?;
            for (i, _) in args.iter().enumerate().skip(1) {
                best = best.max(num_arg("max", args, i)?);
            }
            Ok(Value::Num(best))
        }),
    );

    // Tables.
    interp.register(
        "insert",
        Rc::new(|_, args| {
            let t = arg(args, 0);
            let t = t
                .as_table()
                .ok_or_else(|| RtError::new("insert: argument 1 must be a table"))?;
            t.borrow_mut().push(arg(args, 1));
            Ok(Value::Nil)
        }),
    );
    interp.register(
        "remove",
        Rc::new(|_, args| {
            let t = arg(args, 0);
            let t = t
                .as_table()
                .ok_or_else(|| RtError::new("remove: argument 1 must be a table"))?;
            let popped = t.borrow_mut().pop();
            Ok(popped.unwrap_or(Value::Nil))
        }),
    );
    interp.register(
        "keys",
        Rc::new(|_, args| {
            let t = arg(args, 0);
            let t = t
                .as_table()
                .ok_or_else(|| RtError::new("keys: argument 1 must be a table"))?;
            let mut out = crate::value::Table::new();
            for (k, _) in t.borrow().iter() {
                out.push(match k {
                    Key::Int(i) => Value::Num(i as f64),
                    Key::Str(s) => Value::str(s),
                });
            }
            Ok(Value::from_table(out))
        }),
    );

    // Strings.
    interp.register(
        "sub",
        Rc::new(|_, args| {
            let s = arg(args, 0);
            let s = s
                .as_str()
                .ok_or_else(|| RtError::new("sub: argument 1 must be a string"))?
                .to_string();
            let len = s.len() as i64;
            let norm = |i: f64| -> i64 {
                let i = i as i64;
                if i < 0 {
                    (len + i + 1).max(1)
                } else {
                    i.max(1)
                }
            };
            let from = norm(num_arg("sub", args, 1)?);
            let to = match arg(args, 2) {
                Value::Nil => len,
                v => {
                    let i = v
                        .as_num()
                        .ok_or_else(|| RtError::new("sub: argument 3 must be a number"))?;
                    let i = i as i64;
                    if i < 0 {
                        len + i + 1
                    } else {
                        i.min(len)
                    }
                }
            };
            if from > to {
                return Ok(Value::str(""));
            }
            Ok(Value::str(&s[(from - 1) as usize..to as usize]))
        }),
    );
    interp.register(
        "find",
        Rc::new(|_, args| {
            let s = arg(args, 0);
            let s = s
                .as_str()
                .ok_or_else(|| RtError::new("find: argument 1 must be a string"))?;
            let needle = arg(args, 1);
            let needle = needle
                .as_str()
                .ok_or_else(|| RtError::new("find: argument 2 must be a string"))?;
            Ok(match s.find(needle) {
                Some(i) => Value::Num((i + 1) as f64), // 1-based, like Lua
                None => Value::Nil,
            })
        }),
    );
    interp.register(
        "split",
        Rc::new(|_, args| {
            let s = arg(args, 0);
            let s = s
                .as_str()
                .ok_or_else(|| RtError::new("split: argument 1 must be a string"))?;
            let sep = arg(args, 1);
            let sep = sep
                .as_str()
                .ok_or_else(|| RtError::new("split: argument 2 must be a string"))?;
            let mut out = crate::value::Table::new();
            if sep.is_empty() {
                out.push(Value::str(s));
            } else {
                for part in s.split(sep) {
                    out.push(Value::str(part));
                }
            }
            Ok(Value::from_table(out))
        }),
    );
    interp.register(
        "format_num",
        Rc::new(|_, args| {
            let n = num_arg("format_num", args, 0)?;
            let digits = match arg(args, 1) {
                Value::Nil => 2.0,
                v => v
                    .as_num()
                    .ok_or_else(|| RtError::new("format_num: argument 2 must be a number"))?,
            };
            Ok(Value::str(format!("{:.*}", digits as usize, n)))
        }),
    );
    interp.register(
        "fmt",
        Rc::new(|_, args| Ok(Value::str(fmt_num(num_arg("fmt", args, 0)?)))),
    );

    interp.0
}

/// Collects `(name, fn)` pairs through the same `register` call shape the
/// engines expose, keeping the registration bodies above engine-agnostic.
struct Registrar(Vec<(&'static str, NativeFn)>);

impl Registrar {
    fn register(&mut self, name: &'static str, f: NativeFn) {
        self.0.push((name, f));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Script;

    fn run(src: &str) -> Interp {
        let script = Script::compile(src).unwrap();
        let mut interp = Interp::new();
        interp.load(&script).unwrap();
        interp
    }

    #[test]
    fn print_collects_output() {
        let mut interp = run("print(\"a\", 1, true)\nprint({1, k = 2})");
        assert_eq!(interp.take_output(), vec!["a\t1\ttrue", "{1, k = 2}"]);
        assert!(interp.take_output().is_empty());
    }

    #[test]
    fn tostring_tonumber_round_trip() {
        let interp = run("a = tostring(3.5)\nb = tonumber(\" 42 \")\nc = tonumber(\"nope\")");
        assert_eq!(interp.global("a"), Value::str("3.5"));
        assert_eq!(interp.global("b"), Value::from(42.0));
        assert_eq!(interp.global("c"), Value::Nil);
    }

    #[test]
    fn type_builtin() {
        let interp = run("a = type(nil)\nb = type(1)\nc = type({})\nd = type(print)");
        assert_eq!(interp.global("a"), Value::str("nil"));
        assert_eq!(interp.global("b"), Value::str("number"));
        assert_eq!(interp.global("c"), Value::str("table"));
        assert_eq!(interp.global("d"), Value::str("function"));
    }

    #[test]
    fn error_and_assert() {
        let script = Script::compile("error(\"boom\")").unwrap();
        let err = Interp::new().load(&script).unwrap_err();
        assert_eq!(err.message, "boom");

        let script = Script::compile("assert(false, \"nope\")").unwrap();
        let err = Interp::new().load(&script).unwrap_err();
        assert_eq!(err.message, "nope");

        run("assert(1 == 1)");
    }

    #[test]
    fn math_builtins() {
        let interp = run(
            "a = floor(2.7)\nb = ceil(2.1)\nc = abs(-3)\nd = sqrt(16)\ne = min(3, 1, 2)\nf = max(3, 1, 2)",
        );
        assert_eq!(interp.global("a"), Value::from(2.0));
        assert_eq!(interp.global("b"), Value::from(3.0));
        assert_eq!(interp.global("c"), Value::from(3.0));
        assert_eq!(interp.global("d"), Value::from(4.0));
        assert_eq!(interp.global("e"), Value::from(1.0));
        assert_eq!(interp.global("f"), Value::from(3.0));
    }

    #[test]
    fn table_insert_remove_keys() {
        let interp = run(
            "t = {}\ninsert(t, 5)\ninsert(t, 6)\nn = #t\nx = remove(t)\nm = #t\nt2 = {a = 1, b = 2}\nks = keys(t2)\nk1 = ks[1]",
        );
        assert_eq!(interp.global("n"), Value::from(2.0));
        assert_eq!(interp.global("x"), Value::from(6.0));
        assert_eq!(interp.global("m"), Value::from(1.0));
        assert_eq!(interp.global("k1"), Value::str("a"));
    }

    #[test]
    fn string_sub() {
        let interp = run(
            "a = sub(\"hello\", 2)\nb = sub(\"hello\", 2, 3)\nc = sub(\"hello\", -3)\nd = sub(\"hello\", 4, 2)",
        );
        assert_eq!(interp.global("a"), Value::str("ello"));
        assert_eq!(interp.global("b"), Value::str("el"));
        assert_eq!(interp.global("c"), Value::str("llo"));
        assert_eq!(interp.global("d"), Value::str(""));
    }

    #[test]
    fn format_helpers() {
        let interp = run("a = format_num(3.14159, 2)\nb = fmt(4)");
        assert_eq!(interp.global("a"), Value::str("3.14"));
        assert_eq!(interp.global("b"), Value::str("4"));
    }

    #[test]
    fn find_and_split() {
        let interp = run(
            "a = find(\"hello\", \"ll\")\nb = find(\"hello\", \"zz\")\nt = split(\"1:22:333\", \":\")\nn = #t\nx = t[2]\ne = split(\"abc\", \"\")",
        );
        assert_eq!(interp.global("a"), Value::from(3.0));
        assert_eq!(interp.global("b"), Value::Nil);
        assert_eq!(interp.global("n"), Value::from(3.0));
        assert_eq!(interp.global("x"), Value::str("22"));
    }

    #[test]
    fn wrong_arg_types_error() {
        for src in ["floor(\"x\")", "insert(1, 2)", "sub(1, 2)"] {
            let script = Script::compile(src).unwrap();
            assert!(Interp::new().load(&script).is_err(), "{src}");
        }
    }
}
