//! Cephalo: the embedded scripting language of the Malacology reproduction.
//!
//! The paper embeds a Lua VM in Ceph daemons so that object interfaces and
//! load-balancer policies can be installed, versioned, and hot-swapped
//! without restarting the cluster. Binding a real Lua implementation is off
//! the table under this repository's offline-dependency policy, so Cephalo
//! is a small, Lua-flavoured language implemented from scratch: a lexer, a
//! recursive-descent parser, and a tree-walking interpreter with
//! deterministic sandboxing (instruction budgets and call-depth limits).
//!
//! The feature set is the subset the paper's services actually need:
//! numbers, strings, booleans, nil, tables (array + map parts), functions
//! with closures, `if`/`while`/numeric-`for`, and host-registered native
//! functions through which scripts reach daemon state (load metrics,
//! object I/O, migration targets).
//!
//! # Examples
//!
//! ```
//! use mala_dsl::{Interp, Script, Value};
//!
//! let script = Script::compile(
//!     r#"
//!     function howmuch(load)
//!         return load / 2
//!     end
//!     "#,
//! )
//! .unwrap();
//! let mut interp = Interp::new();
//! interp.load(&script).unwrap();
//! let out = interp
//!     .call("howmuch", &[Value::from(10.0)], &mut ())
//!     .unwrap();
//! assert_eq!(out, Value::from(5.0));
//! ```

pub mod ast;
pub mod compile;
pub mod engine;
pub mod interp;
pub mod lexer;
pub mod parser;
pub mod stdlib;
pub mod testgen;
pub mod value;
pub mod vm;

pub use ast::{BinOp, Block, Expr, Stmt, UnOp};
pub use compile::{Chunk, CompileError};
pub use engine::{DslEngine, EngineKind};
pub use interp::{Interp, RtError, Sandbox};
pub use parser::ParseError;
pub use value::{NativeFn, Table, Value};
pub use vm::Vm;

/// A compiled (parsed) Cephalo script, ready to be loaded into an
/// interpreter. Compilation is pure: no side effects, no host access.
#[derive(Debug, Clone)]
pub struct Script {
    /// Top-level statements.
    pub block: Block,
    /// The source text the script was compiled from.
    pub source: String,
}

impl Script {
    /// Parses `source` into a script.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] describing the first syntax error, with a
    /// line number.
    pub fn compile(source: &str) -> Result<Script, ParseError> {
        let tokens = lexer::lex(source).map_err(|e| ParseError {
            line: e.line,
            message: e.message,
        })?;
        let block = parser::parse(&tokens)?;
        Ok(Script {
            block,
            source: source.to_string(),
        })
    }
}
