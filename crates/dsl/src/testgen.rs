//! Seeded random-program generator for differential testing.
//!
//! The tree-walking interpreter is the reference semantics; the bytecode
//! VM must agree with it observation-for-observation. [`generate`] builds
//! a random Cephalo program from a seed and [`check_seed`] runs it on both
//! engines, comparing: the load result (success, or the exact error
//! message), every `print` line, every tracked global (structurally, so
//! distinct table identities with equal contents compare equal), and the
//! result of calling each generated function with fixed arguments.
//!
//! Programs are constrained so a disagreement can only mean an engine bug:
//!
//! * **Fresh names, declare-before-reference.** Every `local` gets a name
//!   never used before, and expressions only reference already-declared
//!   names. This sidesteps the one intentional semantic difference between
//!   the engines (the interpreter's dynamic scope chain lets a closure
//!   observe a local declared *after* it; the compiler resolves lexically
//!   — see DESIGN §18).
//! * **Bounded work.** `while`/`repeat` loops are driven by explicit
//!   counters, numeric `for` ranges are tiny literals, function bodies are
//!   loop-free, and the call graph is acyclic (a function may only call
//!   functions declared before it). Total work stays orders of magnitude
//!   below the default instruction budget, so a budget trip cannot fire
//!   in one engine but not the other merely because their step accounting
//!   differs. (Budget/depth equivalence is tested separately, with
//!   programs built to trip both.)
//! * **Error paths stay in.** Roughly one in fifteen numeric contexts
//!   receives a "wild" expression of arbitrary type, so type errors (and
//!   their exact messages) are exercised; both engines must fail with the
//!   same message after the same observable prefix.

use std::collections::HashSet;

use crate::ast::{BinOp, UnOp};
use crate::ast::{Block, Expr, Stmt, TableItem};
use crate::value::Value;
use crate::{Interp, Script, Vm};

/// Deterministic splitmix64 generator — no external crates, identical
/// sequences on every platform.
pub struct Rng(u64);

impl Rng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Rng {
        Rng(seed)
    }

    /// Next raw 64-bit value. Not an `Iterator`: the stream is infinite
    /// and never yields `None`, so the trait's contract doesn't fit.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (n > 0).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// True with probability `p`/100.
    pub fn pct(&mut self, p: u64) -> bool {
        self.below(100) < p
    }
}

/// A generated program plus everything the harness needs to observe it.
pub struct GenProgram {
    /// The program as source (via the AST pretty-printer) — for
    /// diagnostics when a divergence is found.
    pub source: String,
    /// The program AST.
    pub block: Block,
    /// Global names whose final values both engines must agree on.
    pub globals: Vec<String>,
    /// `(name, arity)` of top-level functions to call post-load.
    pub funcs: Vec<(String, usize)>,
}

/// Variable type hints used to bias generation toward programs that run
/// to completion (error paths are still injected deliberately).
#[derive(Clone, Copy, PartialEq, Eq)]
enum Ty {
    Num,
    Str,
    Bool,
    /// A table built with the generator's "numeric shape": array entries
    /// and fields `a`/`b`/`c` all hold numbers.
    Table,
    /// A callable (user function or lambda) taking `n` numeric args and
    /// returning a number.
    Func(u8),
    /// Unknown (e.g. a generic-for key: integer or string).
    Any,
}

struct Gen {
    rng: Rng,
    /// Lexical scopes; `scopes[0]` is the top level (whose `local`s are
    /// globals in both engines).
    scopes: Vec<Vec<(String, Ty)>>,
    /// Top-level functions declared so far, callable from later code.
    funcs: Vec<(String, usize)>,
    /// Observable global names.
    tracked: Vec<String>,
    next_id: u32,
}

/// Generates a random program from `seed`.
pub fn generate(seed: u64) -> GenProgram {
    let mut g = Gen {
        rng: Rng::new(seed),
        scopes: vec![Vec::new()],
        funcs: Vec::new(),
        tracked: Vec::new(),
        next_id: 0,
    };
    let n = 6 + g.rng.below(10);
    let mut block = Vec::new();
    for _ in 0..n {
        g.top_stmt(&mut block);
    }
    let source = crate::ast::print_block(&block);
    GenProgram {
        source,
        block,
        globals: g.tracked,
        funcs: g.funcs,
    }
}

impl Gen {
    fn fresh(&mut self, prefix: &str) -> String {
        let id = self.next_id;
        self.next_id += 1;
        format!("{prefix}{id}")
    }

    fn declare(&mut self, name: &str, ty: Ty) {
        if self.scopes.len() == 1 {
            self.tracked.push(name.to_string());
        }
        self.scopes
            .last_mut()
            .expect("open scope")
            .push((name.to_string(), ty));
    }

    fn pick_var(&mut self, want: Ty) -> Option<(String, Ty)> {
        let matches: Vec<(String, Ty)> = self
            .scopes
            .iter()
            .flatten()
            .filter(|(_, t)| match want {
                Ty::Any => true,
                Ty::Func(_) => matches!(t, Ty::Func(_)),
                w => *t == w,
            })
            .cloned()
            .collect();
        if matches.is_empty() {
            return None;
        }
        let i = self.rng.below(matches.len() as u64) as usize;
        Some(matches[i].clone())
    }

    // ---- expressions -------------------------------------------------

    fn num_expr(&mut self, d: u32) -> Expr {
        // Occasional wild operand: exercises type-error paths.
        if self.rng.pct(7) {
            return self.any_expr(d.saturating_sub(1));
        }
        if d == 0 || self.rng.pct(35) {
            return self.num_leaf();
        }
        match self.rng.below(10) {
            0..=3 => {
                let op = match self.rng.below(6) {
                    0 => BinOp::Add,
                    1 => BinOp::Sub,
                    2 => BinOp::Mul,
                    3 => BinOp::Div,
                    4 => BinOp::Mod,
                    _ => BinOp::Pow,
                };
                Expr::Bin(
                    op,
                    Box::new(self.num_expr(d - 1)),
                    Box::new(self.num_expr(d - 1)),
                )
            }
            4 => {
                // A negative literal directly under `-` would print as
                // `--`, which lexes as a comment; flip it positive.
                let inner = match self.num_expr(d - 1) {
                    Expr::Num(n) if n < 0.0 => Expr::Num(-n),
                    e => e,
                };
                Expr::Un(UnOp::Neg, Box::new(inner))
            }
            5 => {
                // Length of a string or table.
                let inner = if self.rng.pct(50) {
                    self.str_expr(d - 1)
                } else {
                    self.table_expr(d - 1)
                };
                Expr::Un(UnOp::Len, Box::new(inner))
            }
            6 => {
                let f = match self.rng.below(4) {
                    0 => "floor",
                    1 => "ceil",
                    2 => "abs",
                    _ => "sqrt",
                };
                Expr::Call(
                    Box::new(Expr::Var(f.to_string())),
                    vec![self.num_expr(d - 1)],
                )
            }
            7 => {
                let f = if self.rng.pct(50) { "min" } else { "max" };
                Expr::Call(
                    Box::new(Expr::Var(f.to_string())),
                    vec![self.num_expr(d - 1), self.num_expr(d - 1)],
                )
            }
            8 => self.call_user_func(d).unwrap_or_else(|| self.num_leaf()),
            _ => self.index_read(d).unwrap_or_else(|| self.num_leaf()),
        }
    }

    fn num_leaf(&mut self) -> Expr {
        match self.rng.below(6) {
            0 | 1 => Expr::Num(self.rng.below(20) as f64),
            2 => Expr::Num(-(self.rng.below(9) as f64) - 1.0),
            3 => Expr::Num(self.rng.below(40) as f64 / 4.0),
            _ => match self.pick_var(Ty::Num) {
                Some((name, _)) => Expr::Var(name),
                None => Expr::Num(self.rng.below(10) as f64),
            },
        }
    }

    /// Reads a numeric field/entry of a numeric-shape table variable.
    fn index_read(&mut self, d: u32) -> Option<Expr> {
        let (name, _) = self.pick_var(Ty::Table)?;
        let idx = match self.rng.below(5) {
            0 => Expr::Str("a".to_string()),
            1 => Expr::Str("b".to_string()),
            2 => Expr::Str("c".to_string()),
            3 => Expr::Num(1.0 + self.rng.below(2) as f64),
            _ => {
                // Computed (dynamic) index, taking the non-const path.
                let inner = Expr::Num(1.0 + self.rng.below(2) as f64);
                if d > 0 {
                    Expr::Bin(
                        BinOp::Add,
                        Box::new(inner),
                        Box::new(Expr::Num(self.rng.below(2) as f64)),
                    )
                } else {
                    inner
                }
            }
        };
        Some(Expr::Index(Box::new(Expr::Var(name)), Box::new(idx)))
    }

    fn call_user_func(&mut self, d: u32) -> Option<Expr> {
        let (name, ty) = self.pick_var(Ty::Func(0))?;
        let arity = match ty {
            Ty::Func(a) => a as usize,
            _ => return None,
        };
        let args = (0..arity)
            .map(|_| self.num_expr(d.saturating_sub(1).min(1)))
            .collect();
        Some(Expr::Call(Box::new(Expr::Var(name)), args))
    }

    fn str_expr(&mut self, d: u32) -> Expr {
        if d == 0 || self.rng.pct(40) {
            return self.str_leaf();
        }
        match self.rng.below(5) {
            0 | 1 => Expr::Bin(
                BinOp::Concat,
                Box::new(self.str_expr(d - 1)),
                Box::new(if self.rng.pct(50) {
                    self.num_expr(d - 1)
                } else {
                    self.str_expr(d - 1)
                }),
            ),
            2 => Expr::Call(
                Box::new(Expr::Var("tostring".to_string())),
                vec![self.any_expr(d - 1)],
            ),
            3 => Expr::Call(
                Box::new(Expr::Var("sub".to_string())),
                vec![
                    self.str_expr(d - 1),
                    Expr::Num(1.0),
                    Expr::Num(1.0 + self.rng.below(3) as f64),
                ],
            ),
            _ => Expr::Call(
                Box::new(Expr::Var("fmt".to_string())),
                vec![self.num_expr(d - 1)],
            ),
        }
    }

    fn str_leaf(&mut self) -> Expr {
        const WORDS: [&str; 6] = ["osd", "mds", "pg", "load", "x:y:z", ""];
        match self.pick_var(Ty::Str) {
            Some((name, _)) if self.rng.pct(50) => Expr::Var(name),
            _ => Expr::Str(WORDS[self.rng.below(WORDS.len() as u64) as usize].to_string()),
        }
    }

    fn bool_expr(&mut self, d: u32) -> Expr {
        if d == 0 || self.rng.pct(25) {
            return match self.pick_var(Ty::Bool) {
                Some((name, _)) if self.rng.pct(50) => Expr::Var(name),
                _ => Expr::Bool(self.rng.pct(50)),
            };
        }
        match self.rng.below(8) {
            0..=2 => {
                let op = match self.rng.below(6) {
                    0 => BinOp::Lt,
                    1 => BinOp::Le,
                    2 => BinOp::Gt,
                    3 => BinOp::Ge,
                    4 => BinOp::Eq,
                    _ => BinOp::Ne,
                };
                Expr::Bin(
                    op,
                    Box::new(self.num_expr(d - 1)),
                    Box::new(self.num_expr(d - 1)),
                )
            }
            3 => Expr::Bin(
                if self.rng.pct(50) {
                    BinOp::Eq
                } else {
                    BinOp::Ne
                },
                Box::new(self.str_expr(d - 1)),
                Box::new(self.str_expr(d - 1)),
            ),
            4 => Expr::Bin(
                if self.rng.pct(50) {
                    BinOp::And
                } else {
                    BinOp::Or
                },
                Box::new(self.bool_expr(d - 1)),
                Box::new(self.bool_expr(d - 1)),
            ),
            5 => Expr::Un(UnOp::Not, Box::new(self.bool_expr(d - 1))),
            6 => Expr::Bin(
                BinOp::Ne,
                Box::new(Expr::Call(
                    Box::new(Expr::Var("find".to_string())),
                    vec![self.str_expr(d - 1), Expr::Str("o".to_string())],
                )),
                Box::new(Expr::Nil),
            ),
            _ => Expr::Bin(
                BinOp::Eq,
                Box::new(Expr::Call(
                    Box::new(Expr::Var("type".to_string())),
                    vec![self.any_expr(d - 1)],
                )),
                Box::new(Expr::Str("number".to_string())),
            ),
        }
    }

    /// A numeric-shape table literal: short array part plus fields
    /// `a`/`b`/`c`, all numeric — so later indexing stays well-typed.
    fn table_lit(&mut self, d: u32) -> Expr {
        let mut items = Vec::new();
        let n_pos = 2 + self.rng.below(2);
        for _ in 0..n_pos {
            let e = self.num_expr(d.saturating_sub(1).min(1));
            items.push(TableItem::Positional(e));
        }
        for field in ["a", "b", "c"] {
            let e = self.num_expr(d.saturating_sub(1).min(1));
            items.push(TableItem::Named(field.to_string(), e));
        }
        Expr::TableLit(items)
    }

    fn table_expr(&mut self, d: u32) -> Expr {
        match self.pick_var(Ty::Table) {
            Some((name, _)) if self.rng.pct(70) => Expr::Var(name),
            _ => self.table_lit(d),
        }
    }

    fn any_expr(&mut self, d: u32) -> Expr {
        match self.rng.below(8) {
            0 | 1 => self.num_expr(d),
            2 | 3 => self.str_expr(d),
            4 => self.bool_expr(d),
            5 => self.table_expr(d),
            6 => Expr::Nil,
            _ => match self.pick_var(Ty::Any) {
                Some((name, _)) => Expr::Var(name),
                None => self.num_expr(d),
            },
        }
    }

    // ---- statements --------------------------------------------------

    /// Appends a top-level statement (the only place function
    /// declarations appear).
    fn top_stmt(&mut self, out: &mut Vec<Stmt>) {
        if self.rng.pct(22) && self.funcs.len() < 5 {
            let f = self.func_decl();
            out.push(f);
            return;
        }
        self.stmt_into(out, 2, false, false);
    }

    /// Appends one logical statement (loops emit their bounding counter
    /// declaration alongside themselves).
    fn stmt_into(&mut self, out: &mut Vec<Stmt>, depth: u32, in_loop: bool, in_func: bool) {
        let roll = self.rng.below(100);
        let s = match roll {
            0..=17 => self.local_decl(depth),
            18..=29 => self.assign(depth),
            30..=37 => self.index_assign(depth),
            38..=46 => self.print_stmt(depth),
            47..=58 if depth > 0 => self.if_stmt(depth, in_loop, in_func),
            59..=66 if depth > 0 && !in_func => self.numfor(depth),
            67..=72 if depth > 0 && !in_func => return self.while_loop(out, depth),
            73..=77 if depth > 0 && !in_func => return self.repeat_loop(out, depth),
            78..=84 if depth > 0 && !in_func => self.genfor(depth),
            85..=90 => self.call_stmt(depth),
            91..=95 => self.lambda_decl(depth),
            _ => self.local_decl(depth),
        };
        out.push(s);
    }

    fn body(&mut self, n: u64, depth: u32, in_loop: bool, in_func: bool) -> Block {
        self.scopes.push(Vec::new());
        let mut out = Vec::new();
        for _ in 0..n {
            self.stmt_into(&mut out, depth, in_loop, in_func);
        }
        if in_loop && self.rng.pct(15) {
            out.push(Stmt::If(vec![(self.bool_expr(1), vec![Stmt::Break])], None));
        }
        self.scopes.pop();
        out
    }

    fn local_decl(&mut self, depth: u32) -> Stmt {
        let name = self.fresh("v");
        let (ty, init) = match self.rng.below(10) {
            0..=4 => (Ty::Num, self.num_expr(depth)),
            5 | 6 => (Ty::Str, self.str_expr(depth)),
            7 => (Ty::Bool, self.bool_expr(depth)),
            _ => (Ty::Table, self.table_lit(depth)),
        };
        self.declare(&name, ty);
        Stmt::Local(name, init)
    }

    fn assign(&mut self, depth: u32) -> Stmt {
        // Mostly re-assign an existing var with a same-typed value; the
        // remainder create fresh globals by assignment.
        if self.rng.pct(70) {
            if let Some((name, ty)) = self.pick_var(Ty::Any) {
                if !matches!(ty, Ty::Func(_)) {
                    let rhs = match ty {
                        Ty::Num => self.num_expr(depth),
                        Ty::Str => self.str_expr(depth),
                        Ty::Bool => self.bool_expr(depth),
                        Ty::Table => self.table_expr(depth),
                        _ => self.any_expr(depth),
                    };
                    return Stmt::Assign(Expr::Var(name), rhs);
                }
            }
        }
        let name = self.fresh("g");
        self.tracked.push(name.clone());
        // Record as a global visible from everywhere (scope 0).
        self.scopes[0].push((name.clone(), Ty::Num));
        Stmt::Assign(Expr::Var(name), self.num_expr(depth))
    }

    fn index_assign(&mut self, depth: u32) -> Stmt {
        match self.pick_var(Ty::Table) {
            Some((name, _)) => {
                let idx = match self.rng.below(4) {
                    0 => Expr::Str("a".to_string()),
                    1 => Expr::Str("b".to_string()),
                    2 => Expr::Num(1.0 + self.rng.below(3) as f64),
                    _ => Expr::Bin(
                        BinOp::Add,
                        Box::new(Expr::Num(1.0)),
                        Box::new(Expr::Num(self.rng.below(2) as f64)),
                    ),
                };
                Stmt::Assign(
                    Expr::Index(Box::new(Expr::Var(name)), Box::new(idx)),
                    self.num_expr(depth),
                )
            }
            None => self.local_decl(depth),
        }
    }

    fn print_stmt(&mut self, depth: u32) -> Stmt {
        let n_args = 1 + self.rng.below(2);
        let args = (0..n_args).map(|_| self.any_expr(depth.min(1))).collect();
        Stmt::ExprStmt(Expr::Call(Box::new(Expr::Var("print".to_string())), args))
    }

    fn if_stmt(&mut self, depth: u32, in_loop: bool, in_func: bool) -> Stmt {
        let mut arms = Vec::new();
        let n_arms = 1 + self.rng.below(2);
        for _ in 0..n_arms {
            let cond = self.bool_expr(1);
            let n = 1 + self.rng.below(2);
            let body = self.body(n, depth - 1, in_loop, in_func);
            arms.push((cond, body));
        }
        let else_blk = if self.rng.pct(50) {
            let n = 1 + self.rng.below(2);
            Some(self.body(n, depth - 1, in_loop, in_func))
        } else {
            None
        };
        Stmt::If(arms, else_blk)
    }

    fn numfor(&mut self, depth: u32) -> Stmt {
        let var = self.fresh("v");
        let (start, stop, step) = if self.rng.pct(25) {
            // Descending with explicit step.
            let start = 1 + self.rng.below(4) as i64;
            (start, start - self.rng.below(4) as i64, Some(-1.0))
        } else {
            let start = self.rng.below(3) as i64;
            (start, start + self.rng.below(4) as i64, None)
        };
        self.scopes.push(Vec::new());
        self.declare(&var, Ty::Num);
        let n = 1 + self.rng.below(2);
        let body = self.body(n, depth - 1, true, false);
        self.scopes.pop();
        Stmt::NumFor {
            var,
            start: Expr::Num(start as f64),
            stop: Expr::Num(stop as f64),
            step: step.map(Expr::Num),
            body,
        }
    }

    fn while_loop(&mut self, out: &mut Vec<Stmt>, depth: u32) {
        // Counter-bounded: `local c = 0 while c < K do c = c + 1 ... end`.
        // The counter is deliberately NOT registered in the scope tracker,
        // so no generated statement can reassign it and unbound the loop.
        let c = self.fresh("v");
        out.push(Stmt::Local(c.clone(), Expr::Num(0.0)));
        let k = 1.0 + self.rng.below(3) as f64;
        let mut body = vec![Stmt::Assign(
            Expr::Var(c.clone()),
            Expr::Bin(
                BinOp::Add,
                Box::new(Expr::Var(c.clone())),
                Box::new(Expr::Num(1.0)),
            ),
        )];
        let n = 1 + self.rng.below(2);
        body.extend(self.body(n, depth - 1, true, false));
        out.push(Stmt::While(
            Expr::Bin(
                BinOp::Lt,
                Box::new(Expr::Var(c.clone())),
                Box::new(Expr::Num(k)),
            ),
            body,
        ));
    }

    fn repeat_loop(&mut self, out: &mut Vec<Stmt>, depth: u32) {
        let c = self.fresh("v");
        out.push(Stmt::Local(c.clone(), Expr::Num(0.0)));
        let k = 1.0 + self.rng.below(3) as f64;
        let mut body = vec![Stmt::Assign(
            Expr::Var(c.clone()),
            Expr::Bin(
                BinOp::Add,
                Box::new(Expr::Var(c.clone())),
                Box::new(Expr::Num(1.0)),
            ),
        )];
        let n = 1 + self.rng.below(2);
        body.extend(self.body(n, depth - 1, true, false));
        out.push(Stmt::Repeat(
            body,
            Expr::Bin(BinOp::Ge, Box::new(Expr::Var(c)), Box::new(Expr::Num(k))),
        ));
    }

    fn genfor(&mut self, depth: u32) -> Stmt {
        let key = self.fresh("v");
        let value = self.fresh("v");
        let iter = self.table_expr(1);
        self.scopes.push(Vec::new());
        self.declare(&key, Ty::Any);
        self.declare(&value, Ty::Num);
        let n = 1 + self.rng.below(2);
        let body = self.body(n, depth - 1, true, false);
        self.scopes.pop();
        Stmt::GenFor {
            key,
            value,
            iter,
            body,
        }
    }

    fn call_stmt(&mut self, depth: u32) -> Stmt {
        match self.call_user_func(depth) {
            Some(call) => Stmt::ExprStmt(call),
            None => self.print_stmt(depth),
        }
    }

    /// `local lN = function(p...) ... return <num> end`, later callable —
    /// the lambda captures whatever locals are visible where it appears,
    /// exercising upvalue plumbing.
    fn lambda_decl(&mut self, depth: u32) -> Stmt {
        let name = self.fresh("l");
        let arity = self.rng.below(3) as usize;
        let params: Vec<String> = (0..arity).map(|_| self.fresh("p")).collect();
        self.scopes.push(Vec::new());
        for p in &params {
            let p = p.clone();
            self.declare(&p, Ty::Num);
        }
        let mut body = Vec::new();
        let n = self.rng.below(3);
        for _ in 0..n {
            self.stmt_into(&mut body, depth.min(1), false, true);
        }
        let ret = self.num_expr(1);
        body.push(Stmt::Return(Some(ret)));
        self.scopes.pop();
        self.declare(&name, Ty::Func(arity as u8));
        Stmt::Local(name, Expr::Lambda(params, body))
    }

    /// `function fN(p...) ... return <num> end` at the top level; the
    /// function can call any function declared before it (acyclic call
    /// graph — no unbounded recursion by construction).
    fn func_decl(&mut self) -> Stmt {
        let name = self.fresh("f");
        let arity = self.rng.below(4) as usize;
        let params: Vec<String> = (0..arity).map(|_| self.fresh("p")).collect();
        self.scopes.push(Vec::new());
        for p in &params {
            let p = p.clone();
            self.declare(&p, Ty::Num);
        }
        let n = 1 + self.rng.below(4);
        let mut body = Vec::new();
        for _ in 0..n {
            self.stmt_into(&mut body, 1, false, true);
        }
        let ret = self.num_expr(2);
        body.push(Stmt::Return(Some(ret)));
        self.scopes.pop();
        self.declare(&name, Ty::Func(arity as u8));
        self.funcs.push((name.clone(), arity));
        Stmt::FuncDecl { name, params, body }
    }
}

// ---- differential check ----------------------------------------------

/// A disagreement between the two engines for one seed.
#[derive(Debug)]
pub struct Divergence {
    /// The seed that produced the program.
    pub seed: u64,
    /// The program source.
    pub source: String,
    /// What differed.
    pub detail: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "seed {}: {}\n--- program ---\n{}",
            self.seed, self.detail, self.source
        )
    }
}

/// Structural equivalence across engines: numbers compare bitwise-NaN-
/// aware, tables compare by contents (cycle-guarded), and any function
/// compares equal to any function (tree-walker `Func` vs VM `Closure`).
pub fn equivalent(a: &Value, b: &Value) -> bool {
    fn go(a: &Value, b: &Value, seen: &mut HashSet<(usize, usize)>) -> bool {
        match (a, b) {
            (Value::Nil, Value::Nil) => true,
            (Value::Bool(x), Value::Bool(y)) => x == y,
            (Value::Num(x), Value::Num(y)) => x == y || (x.is_nan() && y.is_nan()),
            (Value::Str(x), Value::Str(y)) => x == y,
            (
                Value::Func(_) | Value::Closure(_) | Value::Native(_),
                Value::Func(_) | Value::Closure(_) | Value::Native(_),
            ) => true,
            (Value::Table(x), Value::Table(y)) => {
                let pair = (Rc_addr(x), Rc_addr(y));
                if !seen.insert(pair) {
                    // Already comparing this pair further up the stack:
                    // assume equal to terminate on cyclic structures.
                    return true;
                }
                let (tx, ty) = (x.borrow(), y.borrow());
                let ex: Vec<_> = tx.iter().collect();
                let ey: Vec<_> = ty.iter().collect();
                if ex.len() != ey.len() {
                    return false;
                }
                ex.iter()
                    .zip(ey.iter())
                    .all(|((ka, va), (kb, vb))| ka == kb && go(va, vb, seen))
            }
            _ => false,
        }
    }
    #[allow(non_snake_case)]
    fn Rc_addr<T>(rc: &std::rc::Rc<std::cell::RefCell<T>>) -> usize {
        std::rc::Rc::as_ptr(rc) as usize
    }
    go(a, b, &mut HashSet::new())
}

/// Runs the program for `seed` on both engines and compares every
/// observation.
///
/// # Errors
///
/// Returns the first [`Divergence`] found, with the program source.
pub fn check_seed(seed: u64) -> Result<(), Divergence> {
    let prog = generate(seed);
    let fail = |detail: String| Divergence {
        seed,
        source: prog.source.clone(),
        detail,
    };

    let script = Script {
        block: prog.block.clone(),
        source: prog.source.clone(),
    };
    let mut interp = Interp::new();
    let mut vm = Vm::new();
    let ri = interp.load(&script);
    let rv = vm.load(&script);
    match (&ri, &rv) {
        (Ok(()), Ok(())) => {}
        (Err(a), Err(b)) => {
            if a.message != b.message {
                return Err(fail(format!(
                    "load errors differ: interp=`{}` vm=`{}`",
                    a.message, b.message
                )));
            }
        }
        (a, b) => {
            return Err(fail(format!(
                "load results differ: interp={:?} vm={:?}",
                a.as_ref().map(|()| "ok").map_err(|e| &e.message),
                b.as_ref().map(|()| "ok").map_err(|e| &e.message),
            )));
        }
    }
    let oi = interp.take_output();
    let ov = vm.take_output();
    if oi != ov {
        return Err(fail(format!(
            "load output differs:\ninterp: {oi:?}\nvm:     {ov:?}"
        )));
    }
    for name in &prog.globals {
        let a = interp.global(name);
        let b = vm.global(name);
        if !equivalent(&a, &b) {
            return Err(fail(format!(
                "global `{name}` differs after load: interp={} vm={}",
                a.display(),
                b.display()
            )));
        }
    }

    // Only exercise calls if the load completed on both engines.
    if ri.is_ok() {
        for (fname, arity) in &prog.funcs {
            let args: Vec<Value> = (0..*arity).map(|i| Value::from(i as f64 + 1.0)).collect();
            let ci = interp.call(fname, &args, &mut ());
            let cv = vm.call(fname, &args, &mut ());
            match (&ci, &cv) {
                (Ok(a), Ok(b)) => {
                    if !equivalent(a, b) {
                        return Err(fail(format!(
                            "call `{fname}` results differ: interp={} vm={}",
                            a.display(),
                            b.display()
                        )));
                    }
                }
                (Err(a), Err(b)) => {
                    if a.message != b.message {
                        return Err(fail(format!(
                            "call `{fname}` errors differ: interp=`{}` vm=`{}`",
                            a.message, b.message
                        )));
                    }
                }
                (a, b) => {
                    return Err(fail(format!(
                        "call `{fname}` outcomes differ: interp ok={} vm ok={}",
                        a.is_ok(),
                        b.is_ok()
                    )));
                }
            }
            let oi = interp.take_output();
            let ov = vm.take_output();
            if oi != ov {
                return Err(fail(format!(
                    "call `{fname}` output differs:\ninterp: {oi:?}\nvm:     {ov:?}"
                )));
            }
            for name in &prog.globals {
                let a = interp.global(name);
                let b = vm.global(name);
                if !equivalent(&a, &b) {
                    return Err(fail(format!(
                        "global `{name}` differs after calling `{fname}`: interp={} vm={}",
                        a.display(),
                        b.display()
                    )));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(42);
        let b = generate(42);
        assert_eq!(a.source, b.source);
        assert_eq!(a.globals, b.globals);
        let c = generate(43);
        assert_ne!(a.source, c.source);
    }

    #[test]
    fn generated_source_is_parseable() {
        for seed in 0..50 {
            let prog = generate(seed);
            Script::compile(&prog.source)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{}", prog.source));
        }
    }

    #[test]
    fn equivalence_rules() {
        assert!(equivalent(&Value::Num(f64::NAN), &Value::Num(f64::NAN)));
        assert!(!equivalent(&Value::Num(1.0), &Value::Num(2.0)));
        let mut ta = crate::Table::new();
        ta.push(Value::from(1.0));
        ta.set_str("k", Value::str("v"));
        let mut tb = crate::Table::new();
        tb.push(Value::from(1.0));
        tb.set_str("k", Value::str("v"));
        assert!(equivalent(&Value::from_table(ta), &Value::from_table(tb)));
        let tc = Value::table();
        assert!(!equivalent(&tc, &Value::from(1.0)));
    }

    #[test]
    fn smoke_first_hundred_seeds() {
        for seed in 0..100 {
            if let Err(d) = check_seed(seed) {
                panic!("divergence: {d}");
            }
        }
    }
}
