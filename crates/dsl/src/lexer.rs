//! Tokenizer for Cephalo source text.

/// A lexical token with its source line (1-based).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: Tok,
    /// 1-based source line the token starts on.
    pub line: u32,
}

/// Token kinds. Keywords are distinct variants to keep the parser simple.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    // Literals and names.
    Num(f64),
    Str(String),
    Name(String),
    // Keywords.
    And,
    Break,
    Do,
    Else,
    Elseif,
    End,
    False,
    For,
    Function,
    If,
    In,
    Local,
    Nil,
    Not,
    Or,
    Repeat,
    Return,
    Then,
    True,
    Until,
    While,
    // Symbols.
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Caret,
    Hash,
    Eq,
    Ne,
    Le,
    Ge,
    Lt,
    Gt,
    Assign,
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Colon,
    Comma,
    Dot,
    Concat,
    /// End of input sentinel.
    Eof,
}

/// A lexing failure.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// 1-based line of the offending character.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

/// Tokenizes `source`, appending a trailing [`Tok::Eof`].
///
/// # Errors
///
/// Returns the first lexical error (bad character, unterminated string,
/// malformed number).
pub fn lex(source: &str) -> Result<Vec<Token>, LexError> {
    let mut lx = Lexer {
        src: source.as_bytes(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    };
    lx.run()?;
    Ok(lx.out)
}

impl Lexer<'_> {
    fn err(&self, message: impl Into<String>) -> LexError {
        LexError {
            line: self.line,
            message: message.into(),
        }
    }

    fn peek(&self) -> u8 {
        *self.src.get(self.pos).unwrap_or(&0)
    }

    fn peek2(&self) -> u8 {
        *self.src.get(self.pos + 1).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let c = self.peek();
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
        }
        c
    }

    fn push(&mut self, kind: Tok, line: u32) {
        self.out.push(Token { kind, line });
    }

    fn run(&mut self) -> Result<(), LexError> {
        loop {
            self.skip_trivia();
            let line = self.line;
            let c = self.peek();
            if c == 0 {
                self.push(Tok::Eof, line);
                return Ok(());
            }
            match c {
                b'0'..=b'9' => self.number()?,
                b'"' | b'\'' => self.string()?,
                b'A'..=b'Z' | b'a'..=b'z' | b'_' => self.name(),
                _ => self.symbol()?,
            }
        }
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'-' if self.peek2() == b'-' => {
                    // Line comment: `-- ...` to end of line.
                    while self.peek() != 0 && self.peek() != b'\n' {
                        self.bump();
                    }
                }
                _ => return,
            }
        }
    }

    fn number(&mut self) -> Result<(), LexError> {
        let line = self.line;
        let start = self.pos;
        while self.peek().is_ascii_digit() {
            self.bump();
        }
        if self.peek() == b'.' && self.peek2().is_ascii_digit() {
            self.bump();
            while self.peek().is_ascii_digit() {
                self.bump();
            }
        }
        // Scientific notation: 1e9, 2.5e-3.
        if matches!(self.peek(), b'e' | b'E') {
            let save = self.pos;
            self.bump();
            if matches!(self.peek(), b'+' | b'-') {
                self.bump();
            }
            if self.peek().is_ascii_digit() {
                while self.peek().is_ascii_digit() {
                    self.bump();
                }
            } else {
                self.pos = save;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii");
        let value: f64 = text
            .parse()
            .map_err(|_| self.err(format!("malformed number `{text}`")))?;
        self.push(Tok::Num(value), line);
        Ok(())
    }

    fn string(&mut self) -> Result<(), LexError> {
        let line = self.line;
        let quote = self.bump();
        let mut s = String::new();
        loop {
            match self.peek() {
                0 | b'\n' => return Err(self.err("unterminated string")),
                b'\\' => {
                    self.bump();
                    let esc = self.bump();
                    s.push(match esc {
                        b'n' => '\n',
                        b't' => '\t',
                        b'r' => '\r',
                        b'\\' => '\\',
                        b'"' => '"',
                        b'\'' => '\'',
                        other => {
                            return Err(self.err(format!("unknown escape `\\{}`", other as char)))
                        }
                    });
                }
                c if c == quote => {
                    self.bump();
                    self.push(Tok::Str(s), line);
                    return Ok(());
                }
                _ => {
                    let c = self.bump();
                    s.push(c as char);
                }
            }
        }
    }

    fn name(&mut self) {
        let line = self.line;
        let start = self.pos;
        while matches!(self.peek(), b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'_') {
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii");
        let kind = match text {
            "and" => Tok::And,
            "break" => Tok::Break,
            "do" => Tok::Do,
            "else" => Tok::Else,
            "elseif" => Tok::Elseif,
            "end" => Tok::End,
            "false" => Tok::False,
            "for" => Tok::For,
            "function" => Tok::Function,
            "if" => Tok::If,
            "in" => Tok::In,
            "local" => Tok::Local,
            "nil" => Tok::Nil,
            "not" => Tok::Not,
            "or" => Tok::Or,
            "repeat" => Tok::Repeat,
            "return" => Tok::Return,
            "then" => Tok::Then,
            "true" => Tok::True,
            "until" => Tok::Until,
            "while" => Tok::While,
            _ => Tok::Name(text.to_string()),
        };
        self.push(kind, line);
    }

    fn symbol(&mut self) -> Result<(), LexError> {
        let line = self.line;
        let c = self.bump();
        let kind = match c {
            b'+' => Tok::Plus,
            b'-' => Tok::Minus,
            b'*' => Tok::Star,
            b'/' => Tok::Slash,
            b'%' => Tok::Percent,
            b'^' => Tok::Caret,
            b'#' => Tok::Hash,
            b'(' => Tok::LParen,
            b')' => Tok::RParen,
            b'{' => Tok::LBrace,
            b'}' => Tok::RBrace,
            b'[' => Tok::LBracket,
            b']' => Tok::RBracket,
            b';' => Tok::Semi,
            b':' => Tok::Colon,
            b',' => Tok::Comma,
            b'=' => {
                if self.peek() == b'=' {
                    self.bump();
                    Tok::Eq
                } else {
                    Tok::Assign
                }
            }
            b'~' => {
                if self.peek() == b'=' {
                    self.bump();
                    Tok::Ne
                } else {
                    return Err(self.err("unexpected `~` (did you mean `~=`?)"));
                }
            }
            b'<' => {
                if self.peek() == b'=' {
                    self.bump();
                    Tok::Le
                } else {
                    Tok::Lt
                }
            }
            b'>' => {
                if self.peek() == b'=' {
                    self.bump();
                    Tok::Ge
                } else {
                    Tok::Gt
                }
            }
            b'.' => {
                if self.peek() == b'.' {
                    self.bump();
                    Tok::Concat
                } else {
                    Tok::Dot
                }
            }
            other => return Err(self.err(format!("unexpected character `{}`", other as char))),
        };
        self.push(kind, line);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(
            kinds("1 2.5 0.125 1e3 2.5e-1"),
            vec![
                Tok::Num(1.0),
                Tok::Num(2.5),
                Tok::Num(0.125),
                Tok::Num(1000.0),
                Tok::Num(0.25),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lexes_strings_with_escapes() {
        assert_eq!(
            kinds(r#""a\nb" 'c'"#),
            vec![Tok::Str("a\nb".into()), Tok::Str("c".into()), Tok::Eof]
        );
    }

    #[test]
    fn keywords_vs_names() {
        assert_eq!(
            kinds("while whale end ending"),
            vec![
                Tok::While,
                Tok::Name("whale".into()),
                Tok::End,
                Tok::Name("ending".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn two_char_operators() {
        assert_eq!(
            kinds("== ~= <= >= .. = < > ."),
            vec![
                Tok::Eq,
                Tok::Ne,
                Tok::Le,
                Tok::Ge,
                Tok::Concat,
                Tok::Assign,
                Tok::Lt,
                Tok::Gt,
                Tok::Dot,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped_and_lines_tracked() {
        let toks = lex("x -- comment\ny").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[1].kind, Tok::Name("y".into()));
    }

    #[test]
    fn unterminated_string_errors() {
        let err = lex("\"abc").unwrap_err();
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn bad_character_errors() {
        assert!(lex("@").is_err());
        assert!(lex("~x").is_err());
    }

    #[test]
    fn minus_vs_comment() {
        assert_eq!(
            kinds("a - b"),
            vec![
                Tok::Name("a".into()),
                Tok::Minus,
                Tok::Name("b".into()),
                Tok::Eof
            ]
        );
    }
}
