//! Component microbenchmarks and the ablations `DESIGN.md` calls out:
//!
//! * scripted (Cephalo) vs. native object-class dispatch — the cost of
//!   the paper's dynamic interfaces relative to compiled ones;
//! * Cephalo compile + execute;
//! * Paxos commit round (pure state machine);
//! * PG placement (rendezvous hashing);
//! * simulator event throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use mala_dsl::{Interp, Script, Value};
use mala_rados::{ClassRegistry, Object};

fn bench_class_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("class_dispatch");
    // Native: the built-in refcount class.
    let native = ClassRegistry::with_builtins();
    let mut slot = Some(Object::new());
    group.bench_function("native_refcount_get", |b| {
        b.iter(|| {
            std::hint::black_box(native.call("refcount", "get", &mut slot, b"").unwrap());
        })
    });
    // Scripted: an equivalent counter in Cephalo.
    let mut scripted = ClassRegistry::new();
    scripted
        .install_scripted(
            "counter",
            r#"
            function get(input)
                local v = tonumber(xattr_get("refcount"))
                if v == nil then v = 0 end
                v = v + 1
                xattr_set("refcount", fmt(v))
                return fmt(v)
            end
            "#,
            1,
        )
        .unwrap();
    let mut slot2 = Some(Object::new());
    group.bench_function("scripted_counter_get", |b| {
        b.iter(|| {
            std::hint::black_box(scripted.call("counter", "get", &mut slot2, b"").unwrap());
        })
    });
    group.finish();
}

fn bench_dsl(c: &mut Criterion) {
    let mut group = c.benchmark_group("cephalo");
    let source = mala_mantle::SEQUENCER_AWARE_POLICY;
    group.bench_function("compile_policy", |b| {
        b.iter(|| std::hint::black_box(Script::compile(source).unwrap()))
    });
    let fib = Script::compile(
        "function fib(n) if n < 2 then return n end return fib(n-1) + fib(n-2) end",
    )
    .unwrap();
    let mut interp = Interp::new();
    interp.load(&fib).unwrap();
    group.bench_function("fib_15", |b| {
        b.iter(|| std::hint::black_box(interp.call("fib", &[Value::from(15.0)], &mut ()).unwrap()))
    });
    group.finish();
}

fn bench_paxos(c: &mut Criterion) {
    use mala_consensus::paxos::PaxosNode;
    c.bench_function("paxos_commit_round_3replicas", |b| {
        b.iter(|| {
            let mut nodes: Vec<PaxosNode<u64>> = (0..3).map(|i| PaxosNode::new(i, 3)).collect();
            let mut wire: Vec<(u32, _)> =
                nodes[0].campaign().into_iter().map(|o| (0u32, o)).collect();
            for cmd in 0..16u64 {
                wire.extend(nodes[0].submit(cmd).into_iter().map(|o| (0u32, o)));
                while let Some((from, out)) = wire.pop() {
                    let to = out.to;
                    let replies = nodes[to as usize].on_message(from, out.msg);
                    wire.extend(replies.into_iter().map(|r| (to, r)));
                }
            }
            std::hint::black_box(nodes[2].first_unchosen())
        })
    });
}

fn bench_placement(c: &mut Criterion) {
    use mala_rados::placement::{acting_set, pg_of};
    let up: Vec<u32> = (0..120).collect();
    c.bench_function("placement_1000_objects_120osds", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for i in 0..1000 {
                let pg = pg_of("data", &format!("obj-{i}"), 256);
                acc = acc.wrapping_add(acting_set(pg, &up, 3)[0]);
            }
            std::hint::black_box(acc)
        })
    });
}

fn bench_sim(c: &mut Criterion) {
    use mala_sim::{Actor, Context, NodeId, Sim, SimDuration};
    struct PingPong {
        peer: NodeId,
        seed: bool,
    }
    impl Actor for PingPong {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            if self.seed {
                ctx.send(self.peer, 0u64);
            }
        }
        fn on_message(&mut self, ctx: &mut Context<'_>, from: NodeId, msg: Box<dyn std::any::Any>) {
            let n = *msg.downcast::<u64>().unwrap();
            ctx.send(from, n + 1);
        }
    }
    c.bench_function("sim_100k_message_events", |b| {
        b.iter(|| {
            let mut sim = Sim::new(1);
            sim.add_node(
                NodeId(0),
                PingPong {
                    peer: NodeId(1),
                    seed: true,
                },
            );
            sim.add_node(
                NodeId(1),
                PingPong {
                    peer: NodeId(0),
                    seed: false,
                },
            );
            // ~100k deliveries at ~350us simulated RTT per exchange.
            sim.run_for(SimDuration::from_secs(18));
            std::hint::black_box(sim.metrics().counter("sim.messages_sent"))
        })
    });
}

criterion_group!(
    micro,
    bench_class_dispatch,
    bench_dsl,
    bench_paxos,
    bench_placement,
    bench_sim
);
criterion_main!(micro);
