//! Criterion wrappers around every paper experiment, at reduced scale so
//! `cargo bench` finishes in minutes. The full-scale regenerations are
//! the `fig*`/`table*`/`backoff` binaries (`cargo run --release -p
//! mala-bench --bin fig9`).

use criterion::{criterion_group, criterion_main, Criterion};
use mala_bench::exp;
use mala_sim::SimDuration;

fn bench_fig2_and_tables(c: &mut Criterion) {
    c.bench_function("fig2_census", |b| {
        b.iter(|| {
            let data = exp::fig2::run();
            std::hint::black_box(exp::fig2::render(&data));
            std::hint::black_box(exp::tables::render_table1());
            std::hint::black_box(exp::tables::render_table2());
        })
    });
}

fn bench_fig5(c: &mut Criterion) {
    let config = exp::fig5::Config {
        duration: SimDuration::from_secs(1),
        ..Default::default()
    };
    c.bench_function("fig5_cap_policies_1s", |b| {
        b.iter(|| std::hint::black_box(exp::fig5::run(&config)))
    });
}

fn bench_fig6(c: &mut Criterion) {
    let config = exp::fig6::Config {
        duration: SimDuration::from_secs(2),
        quotas: vec![100, 10_000],
        ..Default::default()
    };
    c.bench_function("fig6_quota_sweep_2s", |b| {
        b.iter(|| std::hint::black_box(exp::fig6::run(&config)))
    });
}

fn bench_fig8(c: &mut Criterion) {
    let config = exp::fig8::Config {
        osds: 24,
        updates: 4,
        update_gap: SimDuration::from_millis(1200),
        ..Default::default()
    };
    let mut group = c.benchmark_group("fig8");
    group.sample_size(10);
    group.bench_function("propagation_24osd_4updates", |b| {
        b.iter(|| std::hint::black_box(exp::fig8::run(&config)))
    });
    group.finish();
}

fn bench_fig9(c: &mut Criterion) {
    let config = exp::fig9::Config {
        duration: SimDuration::from_secs(20),
        balance_interval: SimDuration::from_secs(5),
        ..Default::default()
    };
    let mut group = c.benchmark_group("fig9");
    group.sample_size(10);
    group.bench_function("one_regime_20s", |b| {
        b.iter(|| {
            std::hint::black_box(exp::fig9::run_regime(
                &config,
                "bench",
                mala_bench::workload::BalancerChoice::Mantle(
                    mala_mantle::SEQUENCER_AWARE_POLICY.to_string(),
                ),
            ))
        })
    });
    group.finish();
}

fn bench_fig10(c: &mut Criterion) {
    let config = exp::fig10::Config {
        duration: SimDuration::from_secs(15),
        balance_interval: SimDuration::from_secs(3),
        seeds: vec![9],
    };
    let mut group = c.benchmark_group("fig10");
    group.sample_size(10);
    group.bench_function("modes_and_units_15s", |b| {
        b.iter(|| std::hint::black_box(exp::fig10::run(&config)))
    });
    group.finish();
}

fn bench_fig12(c: &mut Criterion) {
    let config = exp::fig12::Config {
        duration: SimDuration::from_secs(20),
        migrate_at: SimDuration::from_secs(10),
        ..Default::default()
    };
    let mut group = c.benchmark_group("fig12");
    group.sample_size(10);
    group.bench_function("serving_modes_20s", |b| {
        b.iter(|| std::hint::black_box(exp::fig12::run(&config)))
    });
    group.finish();
}

fn bench_backoff(c: &mut Criterion) {
    let config = exp::backoff::Config {
        duration: SimDuration::from_secs(20),
        balance_interval: SimDuration::from_secs(2),
        ..Default::default()
    };
    let mut group = c.benchmark_group("backoff");
    group.sample_size(10);
    group.bench_function("aggressiveness_sweep_20s", |b| {
        b.iter(|| std::hint::black_box(exp::backoff::run(&config)))
    });
    group.finish();
}

criterion_group!(
    figures,
    bench_fig2_and_tables,
    bench_fig5,
    bench_fig6,
    bench_fig8,
    bench_fig9,
    bench_fig10,
    bench_fig12,
    bench_backoff
);
criterion_main!(figures);
