//! Open-loop fleet workload: one actor simulating 10⁴–10⁶ concurrent
//! virtual clients issuing sequencer grants against thousands of logs.
//!
//! A closed-loop client ([`mala_zlog::SeqWorkload`]) can never overload
//! the service — its request rate collapses with latency. Production
//! fleets are open-loop: arrivals keep coming whether or not earlier
//! requests finished, which is what exposes queueing collapse and tail
//! blowup. [`OpenLoopFleet`] models `clients` virtual clients with
//! exponential think time (a Poisson arrival process at rate
//! `clients / think`), Zipfian log popularity, and per-sequencer
//! placement-aware routing through [`mala_zlog::SeqRouter`] — learned
//! from `NotAuth` redirects, invalidated on `MdsUnavailable`, refreshed
//! from the monitor's mdsmap.
//!
//! One actor carries the whole fleet: a per-arrival timer with
//! exponential interarrival keeps the sim event count at O(requests),
//! not O(virtual clients).

use std::collections::{BTreeMap, HashMap};

use mala_consensus::{MonMsg, SERVICE_MAP_MDS};
use mala_mds::types::{MdsError, MdsMsg};
use mala_mds::Ino;
use mala_sim::{Actor, Context, NodeId, SimDuration, SimTime};
use mala_zlog::SeqRouter;
use rand::Rng;

const TOKEN_ARRIVAL: u64 = 1;
const TOKEN_RETRY: u64 = 2;

/// Per-request attempt budget (redirect ping-pong / transient errors).
const MAX_ATTEMPTS: u32 = 16;

/// Fleet configuration.
#[derive(Clone)]
pub struct FleetConfig {
    /// MDS rank → node (static routing fallback).
    pub mds_nodes: HashMap<u32, NodeId>,
    /// Rank logs resolve through before a placement is learned.
    pub home_rank: u32,
    /// Monitor node (mdsmap subscription).
    pub monitor: NodeId,
    /// The sequencer inodes the fleet drives.
    pub logs: Vec<Ino>,
    /// Virtual open-loop clients.
    pub clients: u64,
    /// Per-client think time: the fleet's arrival rate is
    /// `clients / think`, independent of service latency.
    pub think: SimDuration,
    /// Zipf exponent for log popularity (0 = uniform).
    pub zipf_s: f64,
    /// Metric series prefix (latency histogram at `<series>.lat_us`).
    pub series: String,
    /// Pacing delay before transient errors re-send.
    pub retry_delay: SimDuration,
}

/// Fleet counters.
#[derive(Debug, Default, Clone)]
pub struct FleetStats {
    /// Arrivals issued.
    pub started: u64,
    /// Grants completed.
    pub done: u64,
    /// `NotAuth` redirects followed.
    pub redirects: u64,
    /// Transient-error retries.
    pub retries: u64,
    /// Requests dropped after the attempt budget.
    pub failed: u64,
    /// Arrivals withheld because their rank was unroutable.
    pub unroutable: u64,
    /// Completions by serving rank (`served_by`).
    pub per_rank: BTreeMap<u32, u64>,
}

struct Flight {
    ino: Ino,
    sent: SimTime,
    attempts: u32,
}

/// The open-loop fleet actor.
pub struct OpenLoopFleet {
    cfg: FleetConfig,
    router: SeqRouter,
    /// Cumulative Zipf distribution over `cfg.logs` (binary-searched
    /// per arrival).
    zipf_cdf: Vec<f64>,
    running: bool,
    next_reqid: u64,
    inflight: HashMap<u64, Flight>,
    /// Requests awaiting a paced re-send (transient error or
    /// unroutable rank).
    retry_q: Vec<Flight>,
    retry_armed: bool,
    lat_series: String,
    /// Live counters (read through the harness).
    pub stats: FleetStats,
}

impl OpenLoopFleet {
    /// Creates a fleet (started explicitly with [`OpenLoopFleet::start`]).
    pub fn new(cfg: FleetConfig) -> OpenLoopFleet {
        assert!(!cfg.logs.is_empty(), "fleet needs at least one log");
        let n = cfg.logs.len();
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(cfg.zipf_s.max(0.0));
            cdf.push(acc);
        }
        let total = acc.max(f64::MIN_POSITIVE);
        for c in &mut cdf {
            *c /= total;
        }
        let router = SeqRouter::new(cfg.mds_nodes.clone(), cfg.home_rank);
        let lat_series = format!("{}.lat_us", cfg.series);
        OpenLoopFleet {
            cfg,
            router,
            zipf_cdf: cdf,
            running: false,
            next_reqid: 1,
            inflight: HashMap::new(),
            retry_q: Vec::new(),
            retry_armed: false,
            lat_series,
            stats: FleetStats::default(),
        }
    }

    /// The routing state (tests: placement inspection).
    pub fn router(&self) -> &SeqRouter {
        &self.router
    }

    /// Begins issuing arrivals.
    pub fn start(&mut self, ctx: &mut Context<'_>) {
        if self.running {
            return;
        }
        self.running = true;
        self.arm_arrival(ctx);
    }

    /// Stops issuing arrivals (in-flight requests drain normally).
    pub fn stop(&mut self) {
        self.running = false;
    }

    /// Mean interarrival across the fleet, in microseconds.
    fn mean_interarrival_us(&self) -> f64 {
        let rate = self.cfg.clients as f64 / self.cfg.think.as_secs_f64().max(1e-9);
        1e6 / rate.max(1e-9)
    }

    fn arm_arrival(&mut self, ctx: &mut Context<'_>) {
        if !self.running {
            return;
        }
        // Exponential interarrival → Poisson arrivals on the sim clock.
        let u: f64 = ctx.rng().gen_range(f64::MIN_POSITIVE..1.0);
        let dt = (-u.ln() * self.mean_interarrival_us()).max(0.0);
        ctx.set_timer(SimDuration::from_micros(dt as u64), TOKEN_ARRIVAL);
    }

    fn pick_log(&mut self, ctx: &mut Context<'_>) -> Ino {
        let u: f64 = ctx.rng().gen_range(0.0..1.0);
        let idx = self
            .zipf_cdf
            .partition_point(|&c| c < u)
            .min(self.cfg.logs.len() - 1);
        self.cfg.logs[idx]
    }

    fn send_grant(&mut self, ctx: &mut Context<'_>, flight: Flight) {
        match self.router.target(flight.ino) {
            Some(node) => {
                let reqid = self.next_reqid;
                self.next_reqid += 1;
                ctx.send(
                    node,
                    MdsMsg::TypeOp {
                        reqid,
                        ino: flight.ino,
                        op: "next".into(),
                    },
                );
                self.inflight.insert(reqid, flight);
            }
            None => {
                // Unroutable rank: park until a fresh mdsmap arrives.
                self.stats.unroutable += 1;
                self.retry_q.push(flight);
                self.arm_retry(ctx);
            }
        }
    }

    fn arm_retry(&mut self, ctx: &mut Context<'_>) {
        if !self.retry_armed && !self.retry_q.is_empty() {
            self.retry_armed = true;
            ctx.set_timer(self.cfg.retry_delay, TOKEN_RETRY);
        }
    }

    fn drain_retries(&mut self, ctx: &mut Context<'_>) {
        let queued = std::mem::take(&mut self.retry_q);
        for flight in queued {
            self.send_grant(ctx, flight);
        }
    }

    fn requeue(&mut self, ctx: &mut Context<'_>, mut flight: Flight) {
        flight.attempts += 1;
        if flight.attempts > MAX_ATTEMPTS {
            self.stats.failed += 1;
            return;
        }
        self.stats.retries += 1;
        self.retry_q.push(flight);
        self.arm_retry(ctx);
    }
}

impl Actor for OpenLoopFleet {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.send(
            self.cfg.monitor,
            MonMsg::Subscribe {
                map: SERVICE_MAP_MDS.to_string(),
            },
        );
    }

    fn on_message(&mut self, ctx: &mut Context<'_>, _from: NodeId, msg: Box<dyn std::any::Any>) {
        let msg = match msg.downcast::<MdsMsg>() {
            Ok(mds) => {
                if let MdsMsg::TypeOpReply {
                    reqid,
                    result,
                    served_by,
                } = *mds
                {
                    let Some(mut flight) = self.inflight.remove(&reqid) else {
                        return;
                    };
                    match result {
                        Ok(_) => {
                            self.stats.done += 1;
                            *self.stats.per_rank.entry(served_by).or_insert(0) += 1;
                            let us = ctx.now().since(flight.sent).as_micros() as f64;
                            ctx.metrics().observe_hist(&self.lat_series, us);
                        }
                        Err(MdsError::NotAuth { rank }) => {
                            // Stale placement: learn the new rank and
                            // re-send immediately — the redirect is the
                            // pacing.
                            self.stats.redirects += 1;
                            self.router.learn(flight.ino, rank);
                            flight.attempts += 1;
                            if flight.attempts > MAX_ATTEMPTS {
                                self.stats.failed += 1;
                            } else {
                                self.send_grant(ctx, flight);
                            }
                        }
                        Err(e) if e.is_retryable() => {
                            if let MdsError::MdsUnavailable { rank } = e {
                                self.router.invalidate_rank(rank);
                            }
                            self.requeue(ctx, flight);
                        }
                        Err(_) => self.stats.failed += 1,
                    }
                }
                return;
            }
            Err(other) => other,
        };
        if let Ok(mon) = msg.downcast::<MonMsg>() {
            match &*mon {
                MonMsg::Snapshot(snap) if snap.map == SERVICE_MAP_MDS => {
                    if self.router.adopt_snapshot(snap) && !self.retry_q.is_empty() {
                        // A fresh map is progress: re-drive parked
                        // requests now rather than waiting out pacing.
                        self.drain_retries(ctx);
                    }
                }
                MonMsg::Changed { map, epoch, .. } if map == SERVICE_MAP_MDS => {
                    if self.router.needs_fetch(*epoch) {
                        ctx.send(
                            self.cfg.monitor,
                            MonMsg::Get {
                                map: SERVICE_MAP_MDS.to_string(),
                            },
                        );
                    }
                }
                _ => {}
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, token: u64) {
        match token {
            TOKEN_ARRIVAL => {
                if !self.running {
                    return;
                }
                self.stats.started += 1;
                let ino = self.pick_log(ctx);
                let flight = Flight {
                    ino,
                    sent: ctx.now(),
                    attempts: 0,
                };
                self.send_grant(ctx, flight);
                self.arm_arrival(ctx);
            }
            TOKEN_RETRY => {
                self.retry_armed = false;
                self.drain_retries(ctx);
                self.arm_retry(ctx);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(logs: usize, zipf_s: f64) -> FleetConfig {
        FleetConfig {
            mds_nodes: HashMap::from([(0, NodeId(20))]),
            home_rank: 0,
            monitor: NodeId(0),
            logs: (1..=logs as u64).collect(),
            clients: 1000,
            think: SimDuration::from_secs(1),
            zipf_s,
            series: "fleet".to_string(),
            retry_delay: SimDuration::from_millis(5),
        }
    }

    #[test]
    fn zipf_cdf_is_normalized_and_monotone() {
        let fleet = OpenLoopFleet::new(cfg(64, 1.0));
        let cdf = &fleet.zipf_cdf;
        assert_eq!(cdf.len(), 64);
        assert!((cdf[63] - 1.0).abs() < 1e-12);
        assert!(cdf.windows(2).all(|w| w[0] < w[1]));
        // Head skew: the most popular log outweighs the uniform share.
        assert!(cdf[0] > 1.0 / 64.0 * 2.0);
    }

    #[test]
    fn uniform_when_exponent_zero() {
        let fleet = OpenLoopFleet::new(cfg(10, 0.0));
        for (k, c) in fleet.zipf_cdf.iter().enumerate() {
            assert!((c - (k + 1) as f64 / 10.0).abs() < 1e-12);
        }
    }

    #[test]
    fn interarrival_matches_rate() {
        let fleet = OpenLoopFleet::new(cfg(1, 0.0));
        // 1000 clients thinking 1 s each → 1000 req/s → 1000 µs mean.
        assert!((fleet.mean_interarrival_us() - 1000.0).abs() < 1e-9);
    }
}
