//! Experiment harness: one module per table/figure in the paper's
//! evaluation (§6), plus the ablations called out in `DESIGN.md`.
//!
//! Each experiment module exposes
//!
//! * a `Config` with the paper's parameters as defaults (scaled-down
//!   variants are used by tests and Criterion benches), and
//! * `run(config) -> Data` producing the numbers, and
//! * `render(&Data) -> String` printing the same rows/series the paper
//!   reports.
//!
//! Binaries under `src/bin/` (one per figure) run the full-scale
//! experiment and print the rendering; `EXPERIMENTS.md` records
//! paper-vs-measured values.

pub mod openloop;
pub mod report;
pub mod workload;

pub mod exp {
    //! The per-figure experiment modules.
    pub mod backoff;
    pub mod dsl_vm;
    pub mod elastic;
    pub mod fig10;
    pub mod fig12;
    pub mod fig2;
    pub mod fig5;
    pub mod fig6;
    pub mod fig8;
    pub mod fig9;
    pub mod linearize;
    pub mod nemesis;
    pub mod scaleout;
    pub mod tables;
    pub mod trace;
    pub mod zlog_pipeline;
    pub mod zlog_read;
}
