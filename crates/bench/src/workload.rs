//! Shared workload assembly for the sequencer experiments (Figs. 5–7 and
//! 9–12): a cluster with MDS ranks, sequencer inodes under `/seq`, and
//! closed-loop [`SeqWorkload`] clients.

use std::any::Any;
use std::collections::HashMap;

use mala_mantle::MantleBalancer;
use mala_mds::types::MdsMsg;
use mala_mds::{Balancer, CephFsBalancer, CephFsMode, FileType, Ino, MdsConfig, NoBalancer};
use mala_sim::{Actor, Context, NodeId, Sim, SimDuration};
use mala_zlog::{SeqMode, SeqWorkload};
use malacology::cluster::{Cluster, ClusterBuilder};

/// Which balancing policy the MDS ranks run.
#[derive(Debug, Clone)]
pub enum BalancerChoice {
    /// No balancing (the Fig. 9 baseline).
    None,
    /// The reconstructed stock CephFS balancer.
    CephFs(CephFsMode),
    /// Mantle with the given Cephalo policy bootstrapped in.
    Mantle(String),
    /// Mantle with no bootstrap policy: the policy must arrive through
    /// the versioned map + RADOS object path.
    MantleFromMap,
}

impl BalancerChoice {
    fn build(&self, _rank: u32) -> Box<dyn Balancer> {
        match self {
            BalancerChoice::None => Box::new(NoBalancer),
            BalancerChoice::CephFs(mode) => Box::new(CephFsBalancer::new(*mode)),
            BalancerChoice::Mantle(src) => Box::new(MantleBalancer::with_policy(src)),
            BalancerChoice::MantleFromMap => Box::new(MantleBalancer::new()),
        }
    }
}

/// Configuration of a sequencer bench.
#[derive(Clone)]
pub struct SeqBenchCfg {
    /// RNG seed.
    pub seed: u64,
    /// MDS ranks.
    pub mds: u32,
    /// OSDs (only needed when policies/journals live in RADOS).
    pub osds: u32,
    /// Number of sequencers (all created on rank 0, as in the paper).
    pub sequencers: u32,
    /// Closed-loop clients per sequencer.
    pub clients_per_seq: u32,
    /// Client access mode.
    pub mode: SeqMode,
    /// Balancing policy.
    pub balancer: BalancerChoice,
    /// Balancing tick.
    pub balance_interval: SimDuration,
    /// Metric series prefix (`<prefix>.s<k>` per sequencer).
    pub prefix: String,
}

impl Default for SeqBenchCfg {
    fn default() -> Self {
        SeqBenchCfg {
            seed: 42,
            mds: 1,
            osds: 0,
            sequencers: 1,
            clients_per_seq: 2,
            mode: SeqMode::RoundTrip,
            balancer: BalancerChoice::None,
            balance_interval: SimDuration::from_secs(10),
            prefix: "seq".to_string(),
        }
    }
}

/// A tiny administrative client used for namespace setup.
#[derive(Default)]
pub struct AdminClient {
    /// `Created` replies by reqid (harnesses read inodes back out).
    pub(crate) created: HashMap<u64, Result<Ino, mala_mds::types::MdsError>>,
}

impl Actor for AdminClient {
    fn on_message(&mut self, _ctx: &mut Context<'_>, _from: NodeId, msg: Box<dyn Any>) {
        if let Ok(msg) = msg.downcast::<MdsMsg>() {
            if let MdsMsg::Created { reqid, result } = *msg {
                self.created.insert(reqid, result);
            }
        }
    }
}

/// An assembled sequencer bench.
pub struct SeqBench {
    /// The cluster (drive `bench.cluster.sim`).
    pub cluster: Cluster,
    /// Sequencer inodes, index = sequencer number.
    pub seq_inos: Vec<Ino>,
    /// Client nodes, `clients[k][i]` = client `i` of sequencer `k`.
    pub clients: Vec<Vec<NodeId>>,
    /// The admin client node.
    pub admin: NodeId,
    /// Series prefix in use.
    pub prefix: String,
}

impl SeqBench {
    /// Builds the cluster, creates `/seq/s<k>` sequencers, spawns (but
    /// does not start) the workload clients.
    pub fn build(cfg: SeqBenchCfg) -> SeqBench {
        let balancer = cfg.balancer.clone();
        let mds_config = MdsConfig {
            balance_interval: cfg.balance_interval,
            ..MdsConfig::default()
        };
        let mut builder = ClusterBuilder::new()
            .monitors(1)
            .osds(cfg.osds)
            .mds_ranks(cfg.mds)
            .mds_config(mds_config)
            .rados_clients(if cfg.osds > 0 { 1 } else { 0 })
            .balancers(move |rank| balancer.build(rank));
        if cfg.osds > 0 {
            builder = builder.pool("meta", 32, 2.min(cfg.osds));
        }
        let mut cluster = builder.build(cfg.seed);
        let admin = cluster.alloc_node();
        cluster.sim.add_node(admin, AdminClient::default());
        // Create /seq and the sequencer inodes on rank 0.
        let mds0 = cluster.mds_node(0);
        let send_create = |sim: &mut Sim, reqid: u64, parent: &str, name: &str, ftype: FileType| {
            let (parent, name) = (parent.to_string(), name.to_string());
            sim.with_actor::<AdminClient, _>(admin, move |_, ctx| {
                ctx.send(
                    mds0,
                    MdsMsg::Create {
                        reqid,
                        parent_path: parent,
                        name,
                        ftype,
                    },
                );
            });
        };
        send_create(&mut cluster.sim, 1, "/", "seq", FileType::Dir);
        cluster.sim.run_for(SimDuration::from_millis(100));
        for k in 0..cfg.sequencers {
            send_create(
                &mut cluster.sim,
                10 + u64::from(k),
                "/seq",
                &format!("s{k}"),
                FileType::Sequencer,
            );
        }
        cluster.sim.run_for(SimDuration::from_millis(200));
        let seq_inos: Vec<Ino> = (0..cfg.sequencers)
            .map(|k| {
                let admin_ref = cluster.sim.actor::<AdminClient>(admin);
                admin_ref
                    .created
                    .get(&(10 + u64::from(k)))
                    .cloned()
                    .unwrap_or_else(|| panic!("sequencer {k} not created"))
                    .expect("create succeeded")
            })
            .collect();
        // Spawn workload clients.
        let mds_nodes = cluster.mds_nodes();
        let mut clients = Vec::new();
        for (k, ino) in seq_inos.iter().enumerate() {
            let mut row = Vec::new();
            for i in 0..cfg.clients_per_seq {
                let node = cluster.alloc_node();
                let series = format!("{}.s{k}.c{i}", cfg.prefix);
                cluster.sim.add_node(
                    node,
                    SeqWorkload::new(mds_nodes.clone(), 0, *ino, cfg.mode, series),
                );
                row.push(node);
            }
            clients.push(row);
        }
        cluster.sim.run_for(SimDuration::from_millis(100));
        SeqBench {
            cluster,
            seq_inos,
            clients,
            admin,
            prefix: cfg.prefix,
        }
    }

    /// Starts every workload client.
    pub fn start_all(&mut self) {
        for row in self.clients.clone() {
            for node in row {
                self.cluster
                    .sim
                    .with_actor::<SeqWorkload, _>(node, |w, ctx| w.start(ctx));
            }
        }
    }

    /// Stops every workload client.
    pub fn stop_all(&mut self) {
        for row in self.clients.clone() {
            for node in row {
                self.cluster
                    .sim
                    .with_actor::<SeqWorkload, _>(node, |w, ctx| w.stop(ctx));
            }
        }
    }

    /// Total positions obtained across all clients.
    pub fn total_ops(&self) -> u64 {
        self.clients
            .iter()
            .flatten()
            .map(|n| self.cluster.sim.actor::<SeqWorkload>(*n).stats.ops)
            .sum()
    }

    /// Positions obtained per sequencer.
    pub fn ops_per_seq(&self) -> Vec<u64> {
        self.clients
            .iter()
            .map(|row| {
                row.iter()
                    .map(|n| self.cluster.sim.actor::<SeqWorkload>(*n).stats.ops)
                    .sum()
            })
            .collect()
    }

    /// All position events of one sequencer as `(t_seconds, count)`,
    /// merged across its clients and both recording encodings.
    pub fn events_of_seq(&self, k: usize) -> Vec<(f64, f64)> {
        let metrics = self.cluster.sim.metrics();
        let mut events = Vec::new();
        for i in 0..self.clients[k].len() {
            for suffix in ["ops", "batch"] {
                let name = format!("{}.s{k}.c{i}.{suffix}", self.prefix);
                for s in metrics.series(&name) {
                    events.push((s.at.as_secs_f64(), s.value));
                }
            }
        }
        events.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"));
        events
    }

    /// Sets the capability policy of sequencer `k`.
    pub fn set_policy(&mut self, k: usize, policy: mala_mds::types::CapPolicyConfig) {
        let mds0 = self.cluster.mds_node(0);
        let ino = self.seq_inos[k];
        self.cluster
            .sim
            .with_actor::<AdminClient, _>(self.admin, move |_, ctx| {
                ctx.send(mds0, MdsMsg::SetCapPolicy { ino, policy });
            });
        self.cluster.sim.run_for(SimDuration::from_millis(10));
    }

    /// Administratively migrates sequencer `k` to `rank` with `style`.
    pub fn migrate(&mut self, k: usize, rank: u32, style: mala_mds::ServeStyle) {
        let mds0 = self.cluster.mds_node(0);
        let ino = self.seq_inos[k];
        self.cluster
            .sim
            .with_actor::<AdminClient, _>(self.admin, move |_, ctx| {
                ctx.send(
                    mds0,
                    MdsMsg::AdminExport {
                        ino,
                        target: rank,
                        style,
                    },
                );
            });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_runs_round_trip_workload() {
        let mut bench = SeqBench::build(SeqBenchCfg {
            sequencers: 2,
            clients_per_seq: 2,
            ..Default::default()
        });
        assert_eq!(bench.seq_inos.len(), 2);
        bench.start_all();
        bench.cluster.sim.run_for(SimDuration::from_secs(2));
        bench.stop_all();
        let total = bench.total_ops();
        assert!(total > 1000, "only {total} ops in 2 s");
        let per_seq = bench.ops_per_seq();
        assert_eq!(per_seq.len(), 2);
        assert!(per_seq.iter().all(|o| *o > 0));
        assert!(!bench.events_of_seq(0).is_empty());
    }

    #[test]
    fn cached_mode_batches() {
        let mut bench = SeqBench::build(SeqBenchCfg {
            mode: SeqMode::Cached {
                op_time: SimDuration::from_micros(5),
            },
            clients_per_seq: 2,
            prefix: "cachedtest".to_string(),
            ..Default::default()
        });
        bench.set_policy(
            0,
            mala_mds::types::CapPolicyConfig::quota(1000, SimDuration::from_millis(250)),
        );
        bench.start_all();
        bench.cluster.sim.run_for(SimDuration::from_secs(2));
        bench.stop_all();
        let total = bench.total_ops();
        assert!(total > 50_000, "cached mode too slow: {total}");
        // Both clients made progress (the capability alternated).
        for node in &bench.clients[0] {
            let stats = bench.cluster.sim.actor::<SeqWorkload>(*node).stats;
            assert!(stats.ops > 0);
            assert!(stats.grants > 1);
        }
    }
}
