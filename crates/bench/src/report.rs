//! Text rendering: aligned tables, CDFs, and time-series columns.

/// Renders an aligned text table.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<w$}", c, w = widths.get(i).copied().unwrap_or(c.len())))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&render_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Selected quantiles of a (sorted ascending) value slice.
pub fn quantiles(sorted: &[f64], qs: &[f64]) -> Vec<(f64, f64)> {
    qs.iter()
        .map(|q| {
            if sorted.is_empty() {
                return (*q, f64::NAN);
            }
            let rank = ((q / 100.0) * (sorted.len() - 1) as f64).round() as usize;
            (*q, sorted[rank.min(sorted.len() - 1)])
        })
        .collect()
}

/// Buckets samples `(t_seconds, count)` into fixed windows, returning
/// `(window_start_s, rate_per_s)`.
pub fn windowed_rate(events: &[(f64, f64)], window_s: f64, until_s: f64) -> Vec<(f64, f64)> {
    let n = (until_s / window_s).ceil() as usize;
    let mut buckets = vec![0.0; n.max(1)];
    for (t, count) in events {
        let idx = (t / window_s) as usize;
        if idx < buckets.len() {
            buckets[idx] += count;
        }
    }
    buckets
        .into_iter()
        .enumerate()
        .map(|(i, total)| (i as f64 * window_s, total / window_s))
        .collect()
}

/// Mean of a slice (`NaN` when empty).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Population standard deviation (`NaN` when empty).
pub fn stddev(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    let m = mean(values);
    (values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / values.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let out = table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a     "));
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    fn quantiles_pick_ranks() {
        let sorted: Vec<f64> = (0..101).map(f64::from).collect();
        let qs = quantiles(&sorted, &[0.0, 50.0, 99.0, 100.0]);
        assert_eq!(qs[1].1, 50.0);
        assert_eq!(qs[2].1, 99.0);
        assert_eq!(qs[3].1, 100.0);
        assert!(quantiles(&[], &[50.0])[0].1.is_nan());
    }

    #[test]
    fn windowed_rate_buckets() {
        let events = vec![(0.1, 5.0), (0.9, 5.0), (1.5, 20.0)];
        let rates = windowed_rate(&events, 1.0, 3.0);
        assert_eq!(rates.len(), 3);
        assert_eq!(rates[0], (0.0, 10.0));
        assert_eq!(rates[1], (1.0, 20.0));
        assert_eq!(rates[2], (2.0, 0.0));
    }

    #[test]
    fn stats_helpers() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!((stddev(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
        assert!(mean(&[]).is_nan());
    }
}
