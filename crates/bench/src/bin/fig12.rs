//! Regenerates Figure 12 (proxy vs. client mode over time).
fn main() {
    let config = mala_bench::exp::fig12::Config::default();
    let data = mala_bench::exp::fig12::run(&config);
    print!("{}", mala_bench::exp::fig12::render(&data, &config));
}
