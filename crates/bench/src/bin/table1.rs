//! Regenerates Table 1 (object-class census by category).
fn main() {
    print!("{}", mala_bench::exp::tables::render_table1());
}
