//! Regenerates Table 2 (internal abstractions catalog).
fn main() {
    print!("{}", mala_bench::exp::tables::render_table2());
}
