//! Elastic-membership sweep (live OSD join + drain under load); writes
//! `results/BENCH_elastic.json` next to the rendered tables.

use std::io::Write;

fn main() {
    let config = mala_bench::exp::elastic::Config::default();
    let data = mala_bench::exp::elastic::run(&config);
    print!("{}", mala_bench::exp::elastic::render(&data));
    let json = mala_bench::exp::elastic::to_json(&data);
    let path = std::path::Path::new("results/BENCH_elastic.json");
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).expect("create results dir");
    }
    let mut f = std::fs::File::create(path).expect("create BENCH_elastic.json");
    f.write_all(json.as_bytes()).expect("write json");
    println!("\nwrote {}", path.display());
}
