//! Regenerates Figure 7 (latency CDFs; same sweep as Figure 6).
use mala_sim::SimDuration;
fn main() {
    let mut config = mala_bench::exp::fig6::Config::default();
    config.duration = SimDuration::from_secs(120);
    let data = mala_bench::exp::fig6::run(&config);
    print!("{}", mala_bench::exp::fig6::render_fig7(&data));
}
