//! Regenerates Figure 7 (latency CDFs; same sweep as Figure 6).
use mala_sim::SimDuration;
fn main() {
    let config = mala_bench::exp::fig6::Config {
        duration: SimDuration::from_secs(120),
        ..Default::default()
    };
    let data = mala_bench::exp::fig6::run(&config);
    print!("{}", mala_bench::exp::fig6::render_fig7(&data));
}
