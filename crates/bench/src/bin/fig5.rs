//! Regenerates Figure 5 (capability holds under the three policies).
fn main() {
    let config = mala_bench::exp::fig5::Config::default();
    let data = mala_bench::exp::fig5::run(&config);
    print!("{}", mala_bench::exp::fig5::render(&data));
}
