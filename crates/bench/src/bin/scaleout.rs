//! Multi-log scale-out sweep (open-loop fleet vs. ranks/logs/clients);
//! writes `results/BENCH_scaleout.json` next to the rendered tables.

use std::io::Write;

fn main() {
    let config = mala_bench::exp::scaleout::Config::default();
    let data = mala_bench::exp::scaleout::run(&config);
    print!("{}", mala_bench::exp::scaleout::render(&data));
    let json = mala_bench::exp::scaleout::to_json(&data);
    let path = std::path::Path::new("results/BENCH_scaleout.json");
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).expect("create results dir");
    }
    let mut f = std::fs::File::create(path).expect("create BENCH_scaleout.json");
    f.write_all(json.as_bytes()).expect("write json");
    println!("\nwrote {}", path.display());
}
