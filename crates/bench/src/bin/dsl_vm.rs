//! Cephalo engine comparison (bytecode VM vs tree-walker); writes
//! `results/BENCH_dsl_vm.json` next to the rendered table.

use std::io::Write;

fn main() {
    let config = mala_bench::exp::dsl_vm::Config::default();
    let data = mala_bench::exp::dsl_vm::run(&config);
    print!("{}", mala_bench::exp::dsl_vm::render(&data));
    let json = mala_bench::exp::dsl_vm::to_json(&data);
    let path = std::path::Path::new("results/BENCH_dsl_vm.json");
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).expect("create results dir");
    }
    let mut f = std::fs::File::create(path).expect("create BENCH_dsl_vm.json");
    f.write_all(json.as_bytes()).expect("write json");
    println!("\nwrote {}", path.display());
}
