//! Traced pipelined-append latency breakdown; writes
//! `results/BENCH_trace.json` next to the rendered table.

use std::io::Write;

fn main() {
    let config = mala_bench::exp::trace::Config::default();
    let data = mala_bench::exp::trace::run(&config);
    print!("{}", mala_bench::exp::trace::render(&data));
    let json = mala_bench::exp::trace::to_json(&data);
    let path = std::path::Path::new("results/BENCH_trace.json");
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).expect("create results dir");
    }
    let mut f = std::fs::File::create(path).expect("create BENCH_trace.json");
    f.write_all(json.as_bytes()).expect("write json");
    println!("\nwrote {}", path.display());
}
