//! Regenerates Figure 9 (throughput over time per balancing regime).
fn main() {
    let config = mala_bench::exp::fig9::Config::default();
    let data = mala_bench::exp::fig9::run(&config);
    print!("{}", mala_bench::exp::fig9::render(&data));
}
