//! Regenerates Figure 6 (sequencer throughput vs. quota).
use mala_sim::SimDuration;
fn main() {
    let mut config = mala_bench::exp::fig6::Config::default();
    // Paper runs each configuration for two minutes.
    config.duration = SimDuration::from_secs(120);
    let data = mala_bench::exp::fig6::run(&config);
    print!("{}", mala_bench::exp::fig6::render(&data));
}
