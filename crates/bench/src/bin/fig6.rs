//! Regenerates Figure 6 (sequencer throughput vs. quota).
use mala_sim::SimDuration;
fn main() {
    // Paper runs each configuration for two minutes.
    let config = mala_bench::exp::fig6::Config {
        duration: SimDuration::from_secs(120),
        ..Default::default()
    };
    let data = mala_bench::exp::fig6::run(&config);
    print!("{}", mala_bench::exp::fig6::render(&data));
}
