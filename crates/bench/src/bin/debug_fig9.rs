//! Scratch diagnostics for the Fig. 9 dynamics (not a paper figure).

use mala_bench::workload::{BalancerChoice, SeqBench, SeqBenchCfg};
use mala_mds::server::Mds;
use mala_mds::CephFsMode;
use mala_sim::SimDuration;
use mala_zlog::SeqMode;

fn run(label: &str, balancer: BalancerChoice) {
    let mut bench = SeqBench::build(SeqBenchCfg {
        seed: 9,
        mds: 3,
        osds: 0,
        sequencers: 3,
        clients_per_seq: 4,
        mode: SeqMode::RoundTrip,
        balancer,
        balance_interval: SimDuration::from_secs(5),
        prefix: format!("dbg.{label}"),
    });
    bench.start_all();
    for step in 0..9 {
        bench.cluster.sim.run_for(SimDuration::from_secs(10));
        let ops: Vec<u64> = bench.ops_per_seq();
        let auth: Vec<u32> = bench
            .seq_inos
            .iter()
            .map(|ino| {
                bench
                    .cluster
                    .sim
                    .actor::<Mds>(bench.cluster.mds_node(0))
                    .auth_of(*ino)
            })
            .collect();
        println!(
            "[{label}] t={:>3}s ops={ops:?} auth={auth:?} exports={} imports={}",
            (step + 1) * 10,
            bench.cluster.sim.metrics().counter("mds.exports"),
            bench.cluster.sim.metrics().counter("mds.imports"),
        );
    }
    bench.stop_all();
    println!("[{label}] total={}", bench.total_ops());
}

fn main() {
    run("none", BalancerChoice::None);
    run("cephfs", BalancerChoice::CephFs(CephFsMode::Workload));
    run(
        "mantle",
        BalancerChoice::Mantle(mala_mantle::SEQUENCER_AWARE_POLICY.to_string()),
    );
}
