//! Regenerates the §6.2.3 backoff sweep (aggressive vs. conservative).
fn main() {
    let config = mala_bench::exp::backoff::Config::default();
    let data = mala_bench::exp::backoff::run(&config);
    print!("{}", mala_bench::exp::backoff::render(&data));
}
