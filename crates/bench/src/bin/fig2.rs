//! Regenerates Figure 2 (growth of co-designed object interfaces).
fn main() {
    let data = mala_bench::exp::fig2::run();
    print!("{}", mala_bench::exp::fig2::render(&data));
}
