//! Regenerates Figure 10 (balancing modes and migration units).
fn main() {
    let config = mala_bench::exp::fig10::Config::default();
    let data = mala_bench::exp::fig10::run(&config);
    print!("{}", mala_bench::exp::fig10::render(&data));
}
