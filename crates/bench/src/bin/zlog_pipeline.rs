//! Pipelined-append throughput sweep; writes
//! `results/BENCH_zlog_append.json` next to the rendered table.

use std::io::Write;

fn main() {
    let config = mala_bench::exp::zlog_pipeline::Config::default();
    let data = mala_bench::exp::zlog_pipeline::run(&config);
    print!("{}", mala_bench::exp::zlog_pipeline::render(&data));
    let json = mala_bench::exp::zlog_pipeline::to_json(&data);
    let path = std::path::Path::new("results/BENCH_zlog_append.json");
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).expect("create results dir");
    }
    let mut f = std::fs::File::create(path).expect("create BENCH_zlog_append.json");
    f.write_all(json.as_bytes()).expect("write json");
    println!("\nwrote {}", path.display());
}
