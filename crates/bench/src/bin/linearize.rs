//! WGL checker cost sweep; writes `results/BENCH_linearize.json` next
//! to the rendered table.

use std::io::Write;

fn main() {
    let config = mala_bench::exp::linearize::Config::default();
    let data = mala_bench::exp::linearize::run(&config);
    print!("{}", mala_bench::exp::linearize::render(&data));
    let json = mala_bench::exp::linearize::to_json(&data);
    let path = std::path::Path::new("results/BENCH_linearize.json");
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).expect("create results dir");
    }
    let mut f = std::fs::File::create(path).expect("create BENCH_linearize.json");
    f.write_all(json.as_bytes()).expect("write json");
    println!("\nwrote {}", path.display());
}
