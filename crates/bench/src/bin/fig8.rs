//! Regenerates Figure 8 (interface-update propagation latency CDF).
fn main() {
    let mut config = mala_bench::exp::fig8::Config::default();
    // Paper: 1000 updates observed.
    config.updates = 1000;
    let data = mala_bench::exp::fig8::run(&config);
    print!("{}", mala_bench::exp::fig8::render(&data, &config));
}
