//! Regenerates Figure 8 (interface-update propagation latency CDF).
fn main() {
    // Paper: 1000 updates observed.
    let config = mala_bench::exp::fig8::Config {
        updates: 1000,
        ..Default::default()
    };
    let data = mala_bench::exp::fig8::run(&config);
    print!("{}", mala_bench::exp::fig8::render(&data, &config));
}
