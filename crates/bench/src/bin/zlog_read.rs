//! Read-side scale-out sweeps (catch-up depth + checkpointed recovery);
//! writes `results/BENCH_zlog_read.json` next to the rendered tables.

use std::io::Write;

fn main() {
    let config = mala_bench::exp::zlog_read::Config::default();
    let data = mala_bench::exp::zlog_read::run(&config);
    print!("{}", mala_bench::exp::zlog_read::render(&data));
    let json = mala_bench::exp::zlog_read::to_json(&data);
    let path = std::path::Path::new("results/BENCH_zlog_read.json");
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).expect("create results dir");
    }
    let mut f = std::fs::File::create(path).expect("create BENCH_zlog_read.json");
    f.write_all(json.as_bytes()).expect("write json");
    println!("\nwrote {}", path.display());
}
