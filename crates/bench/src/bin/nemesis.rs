//! Runs the nemesis availability experiments: append throughput/latency
//! through an OSD crash plus a manual sequencer failover, then through an
//! unannounced MDS crash recovered by beacon detection and standby
//! takeover (`sequencer-failover` scenario).
fn main() {
    let scenario = std::env::args().nth(1);
    match scenario.as_deref() {
        Some("sequencer-failover") => {
            let config = mala_bench::exp::nemesis::FailoverConfig::default();
            let data = mala_bench::exp::nemesis::run_failover(&config);
            print!("{}", mala_bench::exp::nemesis::render_failover(&data));
        }
        Some("availability") | None => {
            let config = mala_bench::exp::nemesis::Config::default();
            let data = mala_bench::exp::nemesis::run(&config);
            print!("{}", mala_bench::exp::nemesis::render(&data));
        }
        Some(other) => {
            eprintln!("unknown scenario {other:?}; use availability or sequencer-failover");
            std::process::exit(2);
        }
    }
}
