//! Runs the nemesis availability experiment: append throughput/latency
//! before, during, and after an OSD crash plus a sequencer failover.
fn main() {
    let config = mala_bench::exp::nemesis::Config::default();
    let data = mala_bench::exp::nemesis::run(&config);
    print!("{}", mala_bench::exp::nemesis::render(&data));
}
