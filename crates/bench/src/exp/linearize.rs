//! WGL checker cost versus history length.
//!
//! The linearizability harness (`mala_sim::linearize`) runs after every
//! nemesis schedule, so its cost bounds how long a fault trace the suite
//! can afford to verify. This experiment generates synthetic shared-log
//! histories — concurrent acked appends, ambiguous (info) appends,
//! reads, fills, and tail probes, the same op mix the fault suites
//! record — and measures wall-clock check time as the history grows.
//!
//! Partitioning keeps the search tractable: per-position windows are
//! tiny, so cost should grow roughly linearly in history length even
//! though WGL is exponential in window width. The `info_pct` knob
//! controls ambiguity (info ops never close, so they stay concurrent
//! with everything after them and widen every window they touch).
//!
//! The binary writes `results/BENCH_linearize.json` alongside the
//! rendered table.

use std::time::Instant;

use mala_sim::history::Recorder;
use mala_sim::linearize::{check_shared_log, LogOp, LogRead, LogRet};
use mala_sim::SimTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::report;

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// History lengths (operation counts) to sweep.
    pub lengths: Vec<usize>,
    /// Concurrent clients issuing ops.
    pub clients: u64,
    /// Percentage of appends whose outcome is ambiguous (info).
    pub info_pct: u32,
    /// Timed check repetitions per length (median reported).
    pub iters: u32,
    /// RNG seed for the synthetic trace.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            lengths: vec![64, 128, 256, 512, 1024, 2048, 4096],
            clients: 4,
            info_pct: 10,
            iters: 5,
            seed: 2017,
        }
    }
}

/// One history length's measurements.
#[derive(Debug, Clone)]
pub struct LengthRun {
    /// Operations in the history (including fail/info ops).
    pub history_len: usize,
    /// Operations the checker admitted (fail ops excluded).
    pub checked_ops: usize,
    /// Partitions (positions + tail projection).
    pub partitions: usize,
    /// Search nodes visited across all partitions.
    pub visited: usize,
    /// Median check wall time, microseconds.
    pub check_us: f64,
    /// Checked operations per wall-clock second.
    pub ops_per_sec: f64,
}

/// Full sweep results.
#[derive(Debug, Clone)]
pub struct Data {
    /// Configuration used.
    pub config: Config,
    /// One row per history length.
    pub runs: Vec<LengthRun>,
}

/// Generates a linearizable synthetic shared-log history of `len` ops.
///
/// Clients take turns invoking; each op's invoke/response window is
/// jittered so neighbouring ops genuinely overlap. Appends ack positions
/// from a shared tail; `info_pct` of them time out *after* the position
/// was burned (recorded as info with the partial `Pos` return, exactly
/// what `ZlogClient` emits); reads observe the authoritative cell state,
/// so the history is consistent by construction and the checker does
/// full search work without ever failing.
pub fn synth_history(
    len: usize,
    clients: u64,
    info_pct: u32,
    seed: u64,
) -> Recorder<LogOp, LogRet> {
    let mut rng = StdRng::seed_from_u64(seed);
    let rec: Recorder<LogOp, LogRet> = Recorder::new();
    let mut tail = 0u64;
    // Authoritative cell states: data payload, filled, or ambiguous.
    let mut cells: Vec<(u64, LogRet)> = Vec::new();
    let mut now = 0u64;
    for k in 0..len {
        let client = rng.gen_range(0..clients);
        now += rng.gen_range(10u64..200);
        let invoke = SimTime::from_micros(now);
        let respond = SimTime::from_micros(now + rng.gen_range(50u64..5_000));
        match rng.gen_range(0u32..100) {
            // Append: acked, or ambiguous with the granted position.
            0..=59 => {
                let data = format!("e{k}").into_bytes();
                let pos = tail;
                tail += 1;
                let id = rec.invoke(client, invoke, LogOp::Append { data: data.clone() });
                if rng.gen_range(0u32..100) < info_pct {
                    rec.info(id, respond, Some(LogRet::Pos(pos)), "append timed out");
                } else {
                    cells.push((pos, LogRet::Read(LogRead::Data(data))));
                    rec.ok(id, respond, LogRet::Pos(pos));
                }
            }
            // Read of a known cell (or a hole past the tail).
            60..=84 => {
                if let Some((pos, state)) = pick(&mut rng, &cells) {
                    let id = rec.invoke(client, invoke, LogOp::Read { pos });
                    rec.ok(id, respond, state);
                } else {
                    let id = rec.invoke(client, invoke, LogOp::Read { pos: tail + 10 });
                    rec.ok(id, respond, LogRet::Read(LogRead::NotWritten));
                }
            }
            // Junk-fill a fresh burned position.
            85..=94 => {
                let pos = tail;
                tail += 1;
                let id = rec.invoke(client, invoke, LogOp::Fill { pos });
                cells.push((pos, LogRet::Read(LogRead::Filled)));
                rec.ok(id, respond, LogRet::Done);
            }
            // Tail probe.
            _ => {
                let id = rec.invoke(client, invoke, LogOp::ReadTail);
                rec.ok(id, respond, LogRet::Tail(tail));
            }
        }
    }
    rec
}

fn pick(rng: &mut StdRng, cells: &[(u64, LogRet)]) -> Option<(u64, LogRet)> {
    if cells.is_empty() {
        return None;
    }
    let (pos, state) = &cells[rng.gen_range(0..cells.len())];
    Some((*pos, state.clone()))
}

/// Runs the sweep: for each length, generate one history and time the
/// checker `iters` times, reporting the median.
pub fn run(config: &Config) -> Data {
    let mut runs = Vec::new();
    for (i, &len) in config.lengths.iter().enumerate() {
        let rec = synth_history(len, config.clients, config.info_pct, config.seed + i as u64);
        let ops = rec.operations();
        let mut times = Vec::new();
        let mut stats = None;
        for _ in 0..config.iters.max(1) {
            let t0 = Instant::now();
            let s = check_shared_log(&ops).expect("synthetic history is linearizable");
            times.push(t0.elapsed().as_secs_f64() * 1e6);
            stats = Some(s);
        }
        let stats = stats.expect("at least one iteration ran");
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let check_us = times[times.len() / 2];
        runs.push(LengthRun {
            history_len: ops.len(),
            checked_ops: stats.ops,
            partitions: stats.partitions,
            visited: stats.visited,
            check_us,
            ops_per_sec: if check_us > 0.0 {
                stats.ops as f64 / (check_us / 1e6)
            } else {
                f64::INFINITY
            },
        });
    }
    Data {
        config: config.clone(),
        runs,
    }
}

/// Renders the sweep as an aligned table.
pub fn render(data: &Data) -> String {
    let rows: Vec<Vec<String>> = data
        .runs
        .iter()
        .map(|r| {
            vec![
                r.history_len.to_string(),
                r.checked_ops.to_string(),
                r.partitions.to_string(),
                r.visited.to_string(),
                format!("{:.1}", r.check_us),
                format!("{:.0}", r.ops_per_sec),
            ]
        })
        .collect();
    let mut out = format!(
        "WGL checker cost vs history length ({} clients, {}% ambiguous appends, median of {})\n\n",
        data.config.clients, data.config.info_pct, data.config.iters
    );
    out.push_str(&report::table(
        &[
            "history_ops",
            "checked_ops",
            "partitions",
            "visited",
            "check_us",
            "ops/s",
        ],
        &rows,
    ));
    out
}

/// Machine-readable results for `results/BENCH_linearize.json`.
pub fn to_json(data: &Data) -> String {
    let mut out = String::from("{\n  \"bench\": \"linearize\",\n  \"runs\": [\n");
    for (i, r) in data.runs.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"history_ops\": {}, \"checked_ops\": {}, \"partitions\": {}, \
             \"visited\": {}, \"check_us\": {:.1}, \"ops_per_sec\": {:.0}}}{}\n",
            r.history_len,
            r.checked_ops,
            r.partitions,
            r.visited,
            r.check_us,
            r.ops_per_sec,
            if i + 1 == data.runs.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_history_is_linearizable_at_every_length() {
        for len in [16usize, 64, 256] {
            let rec = synth_history(len, 3, 15, 7);
            let ops = rec.operations();
            assert_eq!(ops.len(), len);
            let stats = check_shared_log(&ops).expect("synthetic history must check");
            assert!(stats.partitions > 0);
        }
    }

    #[test]
    fn sweep_produces_one_row_per_length() {
        let config = Config {
            lengths: vec![32, 64],
            clients: 3,
            info_pct: 10,
            iters: 2,
            seed: 11,
        };
        let data = run(&config);
        assert_eq!(data.runs.len(), 2);
        assert!(data.runs[1].checked_ops > data.runs[0].checked_ops);
        let rendered = render(&data);
        assert!(rendered.contains("history_ops"));
        let json = to_json(&data);
        assert!(json.contains("\"bench\": \"linearize\""));
    }
}
