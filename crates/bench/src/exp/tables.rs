//! Tables 1 and 2: the object-class census by category and the internal
//! abstraction catalog.

use mala_rados::class_registry::{census_by_category, CATALOG};
use malacology::INTERFACE_CATALOG;

use crate::report;

/// Renders Table 1 (object-class categories and method counts).
pub fn render_table1() -> String {
    let mut out = String::from("Table 1: object storage classes by category\n\n");
    let census = census_by_category();
    let rows: Vec<Vec<String>> = census
        .iter()
        .map(|(cat, methods)| {
            vec![
                cat.name().to_string(),
                cat.example().to_string(),
                methods.to_string(),
            ]
        })
        .collect();
    out.push_str(&report::table(&["Category", "Example", "#"], &rows));
    let total: u32 = census.iter().map(|(_, m)| m).sum();
    out.push_str(&format!("\ntotal methods: {total}\n"));
    out.push_str(&format!("catalog classes: {}\n", CATALOG.len()));
    out
}

/// Renders Table 2 (the internal abstractions exposed as interfaces).
pub fn render_table2() -> String {
    let mut out = String::from("Table 2: common internal abstractions\n\n");
    let rows: Vec<Vec<String>> = INTERFACE_CATALOG
        .iter()
        .map(|i| {
            vec![
                i.name.to_string(),
                i.section.to_string(),
                i.production_example.to_string(),
                i.ceph_example.to_string(),
                i.functionality.to_string(),
            ]
        })
        .collect();
    out.push_str(&report::table(
        &[
            "Interface",
            "Section",
            "Example in Production Systems",
            "Example in Ceph",
            "Provided Functionality",
        ],
        &rows,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_counts() {
        let out = render_table1();
        assert!(out.contains("Logging"));
        assert!(out.contains("11"));
        assert!(out.contains("74"));
        assert!(out.contains("total methods: 95"));
    }

    #[test]
    fn table2_lists_all_six_interfaces() {
        let out = render_table2();
        for name in [
            "Service Metadata",
            "Data I/O",
            "Shared Resource",
            "File Type",
            "Load Balancing",
            "Durability",
        ] {
            assert!(out.contains(name), "missing {name}");
        }
    }
}
