//! Multi-log scale-out: aggregate grant throughput and tail latency as
//! sequencers spread across MDS ranks, under an *open-loop* fleet.
//!
//! The paper's sequencer experiments (Figs. 9–12) drive a handful of
//! closed-loop clients; a closed loop can never overload the service, so
//! it cannot show where the metadata path stops scaling. This experiment
//! pins a fleet of 10⁴–10⁶ virtual clients ([`crate::openloop`]) with
//! Zipfian log popularity against 1–4 ranks and sweeps three axes:
//!
//! * **ranks** at fixed fleet size — the scale-out curve (the acceptance
//!   bar is ≥2× ops/s from 1 → 4 ranks),
//! * **logs** at fixed ranks/fleet — contention vs. spread,
//! * **clients** at fixed ranks/logs — the saturation knee: offered load
//!   crosses capacity and p99 departs.
//!
//! Placement is operator-driven: logs are exported greedily by Zipf
//! weight (longest-processing-time onto the least-loaded rank, scaled by
//! each rank's service rate), so the hottest logs spread out and rank 0
//! — which pays the coordination (`admin`) surcharge while the namespace
//! is split — takes a smaller share. Clients find placements through
//! `NotAuth` redirects and keep them in a [`mala_zlog::SeqRouter`] — the
//! tentpole routing layer this run exercises at fleet scale.
//!
//! The MDS cost model is recalibrated for fleet scale: the default
//! `coherence` surcharge (180 µs) models per-request scatter-gather over
//! a *handful* of hot inodes; across thousands of sequencers the
//! coherence traffic batches and amortizes, so the per-request surcharge
//! drops to ~20 µs (same for rank 0's `admin` share). The default model
//! is untouched — Figs. 10/12 still run the conservative costs.

use mala_mds::{FileType, Ino, MdsConfig, MdsCostModel, MdsMsg, ServeStyle};
use mala_sim::SimDuration;
use malacology::cluster::ClusterBuilder;

use crate::openloop::{FleetConfig, OpenLoopFleet};
use crate::report;
use crate::workload::AdminClient;

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// RNG seed.
    pub seed: u64,
    /// Rank counts for the scale-out series (fixed logs/clients).
    pub rank_sweep: Vec<u32>,
    /// Log counts for the contention series (fixed ranks/clients).
    pub log_sweep: Vec<u32>,
    /// Fleet sizes for the saturation series (fixed ranks/logs).
    pub client_sweep: Vec<u64>,
    /// Ranks used by the log and client sweeps.
    pub sweep_ranks: u32,
    /// Logs used by the rank and client sweeps.
    pub fixed_logs: u32,
    /// Fleet size used by the rank and log sweeps.
    pub fixed_clients: u64,
    /// Per-virtual-client think time (fleet rate = clients / think).
    pub think: SimDuration,
    /// Zipf exponent for log popularity.
    pub zipf_s: f64,
    /// Measurement window per point.
    pub measure: SimDuration,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            seed: 2017,
            rank_sweep: vec![1, 2, 4],
            log_sweep: vec![64, 512, 2048],
            client_sweep: vec![16_384, 65_536, 262_144],
            sweep_ranks: 4,
            fixed_logs: 512,
            fixed_clients: 65_536,
            think: SimDuration::from_secs(2),
            zipf_s: 0.6,
            measure: SimDuration::from_secs(4),
        }
    }
}

/// One measured point.
#[derive(Debug, Clone)]
pub struct Point {
    /// MDS ranks serving the namespace.
    pub ranks: u32,
    /// Sequencer logs.
    pub logs: u32,
    /// Virtual open-loop clients.
    pub clients: u64,
    /// Offered load (arrivals/s), independent of service latency.
    pub offered_per_sec: f64,
    /// Grants completed in the window.
    pub done: u64,
    /// Completed grants per second.
    pub ops_per_sec: f64,
    /// Median grant latency (ms).
    pub p50_ms: f64,
    /// 99th-percentile grant latency (ms).
    pub p99_ms: f64,
    /// `NotAuth` redirects followed (placement discovery).
    pub redirects: u64,
    /// Transient-error retries.
    pub retries: u64,
    /// Requests dropped after the attempt budget (must stay 0).
    pub failed: u64,
    /// Fraction of completions served by each rank.
    pub rank_shares: Vec<(u32, f64)>,
}

/// Run results: the three series.
#[derive(Debug, Clone)]
pub struct Data {
    /// Scale-out series (vs. ranks).
    pub rank_series: Vec<Point>,
    /// Contention series (vs. logs).
    pub log_series: Vec<Point>,
    /// Saturation series (vs. clients).
    pub client_series: Vec<Point>,
    /// `ops_per_sec(max ranks) / ops_per_sec(1 rank)` from the rank
    /// series (the ≥2× acceptance bar).
    pub rank_scaling: f64,
}

/// Fleet-scale cost model: coherence batched and amortized across
/// thousands of inodes (see module docs). `settle` is shortened to match
/// so measurement starts after import load decays.
pub fn fleet_costs() -> MdsCostModel {
    MdsCostModel {
        coherence: SimDuration::from_micros(20),
        admin: SimDuration::from_micros(20),
        settle: SimDuration::from_millis(500),
        ..MdsCostModel::default()
    }
}

/// Runs one point: build a cluster, spread `logs` sequencers across
/// `ranks`, drive the open-loop fleet for the measurement window.
pub fn run_point(
    seed: u64,
    ranks: u32,
    logs: u32,
    clients: u64,
    think: SimDuration,
    zipf_s: f64,
    measure: SimDuration,
) -> Point {
    let mds_config = MdsConfig {
        costs: fleet_costs(),
        // Placement is operator-driven here; keep the balancer out.
        balance_interval: SimDuration::from_secs(3600),
        ..MdsConfig::default()
    };
    let mut cluster = ClusterBuilder::new()
        .monitors(1)
        .mds_ranks(ranks)
        .mds_config(mds_config)
        .rados_clients(0)
        .build(seed);

    // Namespace setup: /fleet plus one sequencer per log, all on rank 0.
    let admin = cluster.alloc_node();
    cluster.sim.add_node(admin, AdminClient::default());
    let mds0 = cluster.mds_node(0);
    cluster
        .sim
        .with_actor::<AdminClient, _>(admin, move |_, ctx| {
            ctx.send(
                mds0,
                MdsMsg::Create {
                    reqid: 1,
                    parent_path: "/".to_string(),
                    name: "fleet".to_string(),
                    ftype: FileType::Dir,
                },
            );
        });
    cluster.sim.run_for(SimDuration::from_millis(100));
    for k in 0..logs {
        cluster
            .sim
            .with_actor::<AdminClient, _>(admin, move |_, ctx| {
                ctx.send(
                    mds0,
                    MdsMsg::Create {
                        reqid: 10 + u64::from(k),
                        parent_path: "/fleet".to_string(),
                        name: format!("l{k}"),
                        ftype: FileType::Sequencer,
                    },
                );
            });
    }
    cluster.sim.run_for(SimDuration::from_secs(1));
    let inos: Vec<Ino> = (0..logs)
        .map(|k| {
            cluster
                .sim
                .actor::<AdminClient>(admin)
                .created
                .get(&(10 + u64::from(k)))
                .cloned()
                .unwrap_or_else(|| panic!("log {k} not created"))
                .expect("create succeeded")
        })
        .collect();

    // Spread the logs by popularity: greedy longest-processing-time
    // assignment of each log's Zipf weight onto the rank whose projected
    // busy time stays lowest. Rank 0 serves split-namespace requests
    // slower (it pays the admin surcharge on top of coherence), so it
    // naturally takes a smaller share and the Zipf head lands elsewhere.
    // Exports are Direct style: clients discover placements through
    // NotAuth redirects.
    let costs = fleet_costs();
    let direct_secs = |r: u32| {
        let base = costs.handle + costs.find + costs.coherence;
        let c = if r == 0 { base + costs.admin } else { base };
        c.as_secs_f64()
    };
    let mut load = vec![0.0f64; ranks as usize];
    let mut targets = Vec::with_capacity(inos.len());
    for k in 0..inos.len() {
        let w = 1.0 / ((k + 1) as f64).powf(zipf_s.max(0.0));
        let r = (0..ranks)
            .min_by(|a, b| {
                let ta = (load[*a as usize] + w) * direct_secs(*a);
                let tb = (load[*b as usize] + w) * direct_secs(*b);
                ta.partial_cmp(&tb).expect("finite loads")
            })
            .expect("at least one rank");
        load[r as usize] += w;
        targets.push(r);
    }
    for (k, ino) in inos.iter().enumerate() {
        let target = targets[k];
        if target == 0 {
            continue;
        }
        let ino = *ino;
        cluster
            .sim
            .with_actor::<AdminClient, _>(admin, move |_, ctx| {
                ctx.send(
                    mds0,
                    MdsMsg::AdminExport {
                        ino,
                        target,
                        style: ServeStyle::Direct,
                    },
                );
            });
    }
    // Let exports commit and the import settle window decay.
    cluster.sim.run_for(SimDuration::from_millis(1500));

    // The fleet.
    let fleet_node = cluster.alloc_node();
    let fleet = OpenLoopFleet::new(FleetConfig {
        mds_nodes: cluster.mds_nodes(),
        home_rank: 0,
        monitor: cluster.mon(),
        logs: inos,
        clients,
        think,
        zipf_s,
        series: "fleet".to_string(),
        retry_delay: SimDuration::from_millis(5),
    });
    cluster.sim.add_node(fleet_node, fleet);
    cluster.sim.run_for(SimDuration::from_millis(50));
    cluster
        .sim
        .with_actor::<OpenLoopFleet, _>(fleet_node, |f, ctx| f.start(ctx));
    cluster.sim.run_for(measure);
    cluster
        .sim
        .with_actor::<OpenLoopFleet, _>(fleet_node, |f, _| f.stop());

    let stats = cluster.sim.actor::<OpenLoopFleet>(fleet_node).stats.clone();
    let (p50_ms, p99_ms) = match cluster.sim.metrics().hist("fleet.lat_us") {
        Some(h) if h.count() > 0 => (
            h.quantile(0.50).unwrap_or(0.0) / 1e3,
            h.quantile(0.99).unwrap_or(0.0) / 1e3,
        ),
        _ => (0.0, 0.0),
    };
    let secs = measure.as_secs_f64();
    let total_done = stats.done.max(1) as f64;
    Point {
        ranks,
        logs,
        clients,
        offered_per_sec: clients as f64 / think.as_secs_f64(),
        done: stats.done,
        ops_per_sec: stats.done as f64 / secs,
        p50_ms,
        p99_ms,
        redirects: stats.redirects,
        retries: stats.retries,
        failed: stats.failed,
        rank_shares: stats
            .per_rank
            .iter()
            .map(|(r, n)| (*r, *n as f64 / total_done))
            .collect(),
    }
}

/// Runs the three sweeps.
pub fn run(config: &Config) -> Data {
    let mut rank_series = Vec::new();
    for &ranks in &config.rank_sweep {
        rank_series.push(run_point(
            config.seed,
            ranks,
            config.fixed_logs,
            config.fixed_clients,
            config.think,
            config.zipf_s,
            config.measure,
        ));
    }
    let mut log_series = Vec::new();
    for &logs in &config.log_sweep {
        log_series.push(run_point(
            config.seed,
            config.sweep_ranks,
            logs,
            config.fixed_clients,
            config.think,
            config.zipf_s,
            config.measure,
        ));
    }
    let mut client_series = Vec::new();
    for &clients in &config.client_sweep {
        client_series.push(run_point(
            config.seed,
            config.sweep_ranks,
            config.fixed_logs,
            clients,
            config.think,
            config.zipf_s,
            config.measure,
        ));
    }
    let rank_scaling = match (rank_series.first(), rank_series.last()) {
        (Some(first), Some(last)) if first.ops_per_sec > 0.0 => {
            last.ops_per_sec / first.ops_per_sec
        }
        _ => 0.0,
    };
    Data {
        rank_series,
        log_series,
        client_series,
        rank_scaling,
    }
}

fn point_row(p: &Point) -> Vec<String> {
    let shares = p
        .rank_shares
        .iter()
        .map(|(r, s)| format!("r{r}:{:.0}%", s * 100.0))
        .collect::<Vec<_>>()
        .join(" ");
    vec![
        p.ranks.to_string(),
        p.logs.to_string(),
        p.clients.to_string(),
        format!("{:.0}", p.offered_per_sec),
        format!("{:.0}", p.ops_per_sec),
        format!("{:.2}", p.p50_ms),
        format!("{:.2}", p.p99_ms),
        p.redirects.to_string(),
        p.failed.to_string(),
        shares,
    ]
}

/// Renders the three series as tables.
pub fn render(data: &Data) -> String {
    let headers = [
        "ranks",
        "logs",
        "clients",
        "offered/s",
        "ops/s",
        "p50 ms",
        "p99 ms",
        "redirects",
        "failed",
        "rank shares",
    ];
    let mut out = String::new();
    out.push_str("Scale-out: ops/s vs. MDS ranks (open-loop fleet)\n");
    out.push_str(&report::table(
        &headers,
        &data.rank_series.iter().map(point_row).collect::<Vec<_>>(),
    ));
    out.push_str(&format!(
        "\n1 → {} rank scaling: {:.2}x\n",
        data.rank_series.last().map_or(0, |p| p.ranks),
        data.rank_scaling
    ));
    out.push_str("\nContention: ops/s vs. log count\n");
    out.push_str(&report::table(
        &headers,
        &data.log_series.iter().map(point_row).collect::<Vec<_>>(),
    ));
    out.push_str("\nSaturation: ops/s vs. fleet size\n");
    out.push_str(&report::table(
        &headers,
        &data.client_series.iter().map(point_row).collect::<Vec<_>>(),
    ));
    out
}

fn series_json(out: &mut String, name: &str, series: &[Point], last: bool) {
    out.push_str(&format!("  \"{name}\": [\n"));
    for (i, p) in series.iter().enumerate() {
        let shares = p
            .rank_shares
            .iter()
            .map(|(r, s)| format!("\"{r}\": {s:.4}"))
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "    {{\"ranks\": {}, \"logs\": {}, \"clients\": {}, \
             \"offered_per_s\": {:.1}, \"ops_per_s\": {:.1}, \
             \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"redirects\": {}, \
             \"retries\": {}, \"failed\": {}, \"rank_shares\": {{{}}}}}{}\n",
            p.ranks,
            p.logs,
            p.clients,
            p.offered_per_sec,
            p.ops_per_sec,
            p.p50_ms,
            p.p99_ms,
            p.redirects,
            p.retries,
            p.failed,
            shares,
            if i + 1 == series.len() { "" } else { "," }
        ));
    }
    out.push_str(&format!("  ]{}\n", if last { "" } else { "," }));
}

/// Serializes the run for `results/BENCH_scaleout.json`.
pub fn to_json(data: &Data) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"scaleout\",\n");
    out.push_str("  \"time_base\": \"simulated\",\n");
    out.push_str("  \"workload\": \"open-loop poisson, zipfian logs\",\n");
    out.push_str(&format!(
        "  \"rank_scaling_1_to_max\": {:.3},\n",
        data.rank_scaling
    ));
    series_json(&mut out, "rank_series", &data.rank_series, false);
    series_json(&mut out, "log_series", &data.log_series, false);
    series_json(&mut out, "client_series", &data.client_series, true);
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scaled-down scale-out: 1 → 3 ranks must carry ≥2× the grant
    /// throughput at the same offered load (the CI smoke from ISSUE 10).
    #[test]
    fn scaleout_smoke() {
        let measure = SimDuration::from_secs(2);
        // 16 logs × 256 virtual clients; a think time of 10 ms puts the
        // offered load (25.6k/s) past even the 3-rank capacity, so both
        // points measure capacity rather than offered load.
        let think_fast = SimDuration::from_millis(10);
        let one = run_point(7, 1, 16, 256, think_fast, 0.6, measure);
        let three = run_point(7, 3, 16, 256, think_fast, 0.6, measure);
        assert_eq!(one.failed, 0, "no dropped requests at 1 rank");
        assert_eq!(three.failed, 0, "no dropped requests at 3 ranks");
        assert!(one.done > 0 && three.done > 0);
        // Clients learned placements through redirects.
        assert!(three.redirects > 0, "direct exports must redirect once");
        assert!(
            three.ops_per_sec >= 2.0 * one.ops_per_sec,
            "1 → 3 ranks should scale ≥2x: {:.0} vs {:.0}",
            one.ops_per_sec,
            three.ops_per_sec
        );
    }

    #[test]
    fn saturation_point_tracks_offered_load_when_underloaded() {
        // 64 clients thinking 1 s → 64/s offered, single rank capacity
        // ~8.3k/s: completion rate must track the offered rate.
        let p = run_point(
            11,
            1,
            8,
            64,
            SimDuration::from_secs(1),
            0.0,
            SimDuration::from_secs(4),
        );
        assert_eq!(p.failed, 0);
        assert!(
            (p.ops_per_sec - p.offered_per_sec).abs() < p.offered_per_sec * 0.35,
            "underloaded fleet should complete near the offered rate: \
             offered {:.0}/s done {:.0}/s",
            p.offered_per_sec,
            p.ops_per_sec
        );
    }
}
