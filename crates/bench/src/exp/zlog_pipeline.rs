//! Pipelined ZLog append throughput: bulk position grants + coalesced
//! stripe writes versus the one-round-trip-per-append baseline.
//!
//! A single closed-loop client appends `appends` entries to a fresh log
//! at each queue depth. Depth 1 is the classic path ([`ZlogClient::
//! append`]): one sequencer round trip and one stripe write per entry.
//! Depth ≥ 2 uses the pipelined path ([`ZlogClient::append_async`]): the
//! client keeps `depth` appends in flight, each full queue is covered by
//! a single bulk grant (`next_batch:N`), and same-stripe positions travel
//! to the OSD as one `write_batch` call — one journal group-commit.
//!
//! The binary writes `results/BENCH_zlog_append.json` (machine readable)
//! alongside the rendered table.

use std::collections::HashMap;

use mala_consensus::{MonConfig, MonMsg, Monitor};
use mala_mds::server::Mds;
use mala_mds::{MdsConfig, MdsMapView, NoBalancer};
use mala_rados::{Osd, OsdConfig, OsdMapView, PoolInfo};
use mala_sim::{Hist, NodeId, Sim, SimDuration};
use mala_zlog::log::{run_op, ZlogOut};
use mala_zlog::{zlog_interface_update, AppendResult, BatchConfig, ZlogClient, ZlogConfig};

use crate::report;

const MON: NodeId = NodeId(0);
const MDS0: NodeId = NodeId(20);
const CLIENT: NodeId = NodeId(100);

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Appends per depth run.
    pub appends: usize,
    /// Queue depths to sweep; depth 1 is the single-append baseline.
    pub depths: Vec<usize>,
    /// OSD count.
    pub osds: u32,
    /// Stripe width (objects the log fans out over).
    pub stripe_width: u32,
    /// Flush window for partial queues.
    pub flush_window: SimDuration,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            appends: 512,
            depths: vec![1, 2, 4, 8, 16, 32],
            osds: 4,
            stripe_width: 4,
            flush_window: SimDuration::from_millis(1),
            seed: 7,
        }
    }
}

/// One queue depth's measurements.
#[derive(Debug, Clone)]
pub struct DepthRun {
    /// Queue depth (1 = plain `append`).
    pub queue_depth: usize,
    /// Appends per simulated second.
    pub throughput: f64,
    /// Median append latency (sim ms).
    pub p50_ms: f64,
    /// Tail append latency (sim ms).
    pub p99_ms: f64,
    /// Run length in simulated seconds.
    pub wall_s: f64,
    /// Sequencer round trips consumed (bulk grants, or every append at
    /// depth 1).
    pub grants: u64,
    /// Coalesced `write_batch` calls issued (0 at depth 1).
    pub batch_writes: u64,
    /// OSD journal group-commits on the primaries.
    pub journal_commits: u64,
}

/// The sweep.
#[derive(Debug, Clone)]
pub struct Data {
    /// Appends per run.
    pub appends: usize,
    /// One entry per queue depth, in sweep order.
    pub runs: Vec<DepthRun>,
}

fn build(config: &Config, depth: usize) -> Sim {
    let zcfg = ZlogConfig {
        name: format!("pipebench.d{depth}"),
        pool: "zlogpool".to_string(),
        stripe_width: config.stripe_width,
        mds_nodes: HashMap::from([(0, MDS0)]),
        home_rank: 0,
        monitor: MON,
    };
    let client = if depth <= 1 {
        ZlogClient::new(zcfg)
    } else {
        ZlogClient::with_batching(
            zcfg,
            BatchConfig {
                queue_depth: depth,
                flush_window: config.flush_window,
            },
        )
    };
    let mut sim = Sim::new(config.seed);
    sim.add_node(MON, Monitor::new(0, vec![MON], MonConfig::default()));
    for i in 0..config.osds {
        sim.add_node(NodeId(10 + i), Osd::new(i, MON, OsdConfig::default()));
    }
    sim.add_node(
        MDS0,
        Mds::new(0, MON, MdsConfig::default(), Box::new(NoBalancer)),
    );
    sim.add_node(CLIENT, client);
    let mut updates = vec![
        OsdMapView::update_pool(
            "zlogpool",
            PoolInfo {
                pg_num: 32,
                replicas: 2,
            },
        ),
        MdsMapView::update_rank(0, MDS0, true),
        zlog_interface_update(),
    ];
    for i in 0..config.osds {
        updates.push(OsdMapView::update_osd(i, NodeId(10 + i), true));
    }
    sim.inject(MON, MonMsg::Submit { seq: 1, updates });
    sim.run_for(SimDuration::from_secs(3));
    let res = run_op(&mut sim, CLIENT, SimDuration::from_secs(5), |c, ctx| {
        c.setup(ctx)
    });
    assert!(
        matches!(res, AppendResult::Ok(ZlogOut::SetUp(_))),
        "{res:?}"
    );
    sim
}

/// Runs one depth; panics on any failed or duplicated append.
pub fn run_depth(config: &Config, depth: usize) -> DepthRun {
    let mut sim = build(config, depth);
    let mut latencies_ms: Vec<f64> = Vec::with_capacity(config.appends);
    let mut positions: Vec<u64> = Vec::with_capacity(config.appends);
    let t_start = sim.now();
    if depth <= 1 {
        // Baseline: strictly one append in flight, classic path.
        for i in 0..config.appends {
            let t0 = sim.now();
            let data = format!("entry-{i}").into_bytes();
            match run_op(
                &mut sim,
                CLIENT,
                SimDuration::from_secs(60),
                move |c, ctx| c.append(ctx, data),
            ) {
                AppendResult::Ok(ZlogOut::Pos(p)) => positions.push(p),
                other => panic!("baseline append {i} failed: {other:?}"),
            }
            latencies_ms.push(sim.now().since(t0).as_secs_f64() * 1e3);
        }
    } else {
        // Closed loop: keep `depth` async appends in flight.
        let mut inflight: Vec<u64> = Vec::new();
        let mut starts: HashMap<u64, mala_sim::SimTime> = HashMap::new();
        let mut submitted = 0usize;
        while positions.len() < config.appends {
            while inflight.len() < depth && submitted < config.appends {
                let data = format!("entry-{submitted}").into_bytes();
                let now = sim.now();
                let op = sim
                    .with_actor::<ZlogClient, _>(CLIENT, move |c, ctx| c.append_async(ctx, data));
                starts.insert(op, now);
                inflight.push(op);
                submitted += 1;
            }
            if submitted == config.appends {
                // Tail of the run: don't idle on the flush window.
                sim.with_actor::<ZlogClient, _>(CLIENT, |c, ctx| c.flush(ctx));
            }
            let deadline = sim.now() + SimDuration::from_secs(60);
            let watched = inflight.clone();
            let progressed = sim.run_until_pred(deadline, move |s| {
                let c = s.actor::<ZlogClient>(CLIENT);
                watched.iter().any(|&op| c.is_done(op))
            });
            assert!(progressed, "pipelined appends stalled at depth {depth}");
            let now = sim.now();
            let done: Vec<u64> = inflight
                .iter()
                .copied()
                .filter(|&op| sim.actor::<ZlogClient>(CLIENT).is_done(op))
                .collect();
            for &op in &done {
                match sim.actor_mut::<ZlogClient>(CLIENT).take_result(op) {
                    Some(AppendResult::Ok(ZlogOut::Pos(p))) => positions.push(p),
                    other => panic!("async append failed: {other:?}"),
                }
                let t0 = starts.remove(&op).expect("start recorded");
                latencies_ms.push(now.since(t0).as_secs_f64() * 1e3);
            }
            inflight.retain(|op| !done.contains(op));
        }
    }
    let wall_s = sim.now().since(t_start).as_secs_f64();
    // CORFU safety is part of the benchmark contract: every op resolved
    // to a distinct position.
    let mut dedup = positions.clone();
    dedup.sort_unstable();
    dedup.dedup();
    assert_eq!(dedup.len(), config.appends, "duplicate positions assigned");
    // Log-scale histogram over microseconds: same machinery the tracer
    // uses, immune to NaN-poisoned comparison sorts.
    let lat_us: Vec<f64> = latencies_ms.iter().map(|ms| ms * 1e3).collect();
    let hist = Hist::from_values(&lat_us);
    let grants = if depth <= 1 {
        config.appends as u64
    } else {
        sim.metrics().counter("zlog.pos_grants")
    };
    DepthRun {
        queue_depth: depth,
        throughput: config.appends as f64 / wall_s,
        p50_ms: hist.quantile(0.5).unwrap_or(0.0) / 1e3,
        p99_ms: hist.quantile(0.99).unwrap_or(0.0) / 1e3,
        wall_s,
        grants,
        batch_writes: sim.metrics().counter("zlog.batch_writes"),
        journal_commits: sim.metrics().counter("osd.journal_commits"),
    }
}

/// Runs the whole sweep.
pub fn run(config: &Config) -> Data {
    Data {
        appends: config.appends,
        runs: config
            .depths
            .iter()
            .map(|&d| run_depth(config, d))
            .collect(),
    }
}

/// Speedup of `run` over the depth-1 baseline in `data` (1.0 if absent).
pub fn speedup(data: &Data, run: &DepthRun) -> f64 {
    data.runs
        .iter()
        .find(|r| r.queue_depth == 1)
        .map(|base| run.throughput / base.throughput)
        .unwrap_or(1.0)
}

/// Renders the sweep as an aligned table.
pub fn render(data: &Data) -> String {
    let mut out = format!(
        "Pipelined ZLog appends: {} appends per run, single closed-loop client\n\n",
        data.appends
    );
    let headers = [
        "depth", "ops/s", "speedup", "p50 ms", "p99 ms", "grants", "batches", "jrnl",
    ];
    let rows: Vec<Vec<String>> = data
        .runs
        .iter()
        .map(|r| {
            vec![
                r.queue_depth.to_string(),
                format!("{:.0}", r.throughput),
                format!("{:.2}x", speedup(data, r)),
                format!("{:.2}", r.p50_ms),
                format!("{:.2}", r.p99_ms),
                r.grants.to_string(),
                r.batch_writes.to_string(),
                r.journal_commits.to_string(),
            ]
        })
        .collect();
    out.push_str(&report::table(&headers, &rows));
    out
}

/// Machine-readable rendering for `results/BENCH_zlog_append.json`.
pub fn to_json(data: &Data) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"zlog_pipelined_appends\",\n");
    out.push_str(&format!("  \"appends_per_run\": {},\n", data.appends));
    out.push_str("  \"time_base\": \"simulated\",\n");
    out.push_str("  \"runs\": [\n");
    for (i, r) in data.runs.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"queue_depth\": {}, \"throughput_ops_per_s\": {:.1}, \
             \"speedup_vs_depth1\": {:.2}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \
             \"wall_s\": {:.3}, \"sequencer_grants\": {}, \"batch_writes\": {}, \
             \"osd_journal_commits\": {}}}{}\n",
            r.queue_depth,
            r.throughput,
            speedup(data, r),
            r.p50_ms,
            r.p99_ms,
            r.wall_s,
            r.grants,
            r.batch_writes,
            r.journal_commits,
            if i + 1 == data.runs.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batching_beats_the_baseline_by_3x_at_depth_8() {
        let config = Config {
            appends: 96,
            depths: vec![1, 8],
            ..Default::default()
        };
        let data = run(&config);
        let base = &data.runs[0];
        let deep = &data.runs[1];
        assert!(
            deep.throughput >= 3.0 * base.throughput,
            "depth 8 must be >= 3x depth 1: {:.0} vs {:.0} ops/s",
            deep.throughput,
            base.throughput
        );
        // Grant amortization: far fewer round trips than appends.
        assert!(deep.grants * 4 <= base.grants, "grants: {}", deep.grants);
        // Coalescing visible at both the client and the journal.
        assert!(deep.batch_writes > 0);
        assert!(
            deep.journal_commits < base.journal_commits,
            "journal commits must shrink: {} vs {}",
            deep.journal_commits,
            base.journal_commits
        );
        let rendered = render(&data);
        assert!(rendered.contains("speedup"));
        let json = to_json(&data);
        assert!(json.contains("\"queue_depth\": 8"));
    }
}
