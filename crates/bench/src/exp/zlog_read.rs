//! Read-side scale-out: vectored catch-up throughput versus batch depth,
//! and checkpointed KV recovery versus total log length.
//!
//! **Catch-up sweep** — a cold reader replays a pre-populated log. Depth
//! 1 is the classic path: one `read` round trip per position. Depth ≥ 2
//! uses the pipelined tailing cursor ([`ZlogClient::tail_cursor`]): up to
//! `depth` positions prefetched ahead of the delivery point, one
//! `read_batch` RADOS op per stripe object, several ops in flight. The
//! `osd.reads_served / rados.read_batch_ops` ratio is the round-trip
//! amplification the vectored path removes.
//!
//! **Recovery sweep** — a KV replica recovers from a log of growing total
//! length. Without a checkpoint, replay starts at zero and recovery cost
//! grows with the log. With a checkpoint trailing the tail by a fixed
//! lag, recovery restores the snapshot and replays only the suffix —
//! flat in total log length, which is the whole point of trim/checkpoint.
//!
//! The binary writes `results/BENCH_zlog_read.json` alongside the tables.

use std::collections::HashMap;

use mala_consensus::{MonConfig, MonMsg, Monitor};
use mala_mds::server::Mds;
use mala_mds::{MdsConfig, MdsMapView, NoBalancer};
use mala_rados::{Osd, OsdConfig, OsdMapView, PoolInfo};
use mala_sim::{NodeId, Sim, SimDuration};
use mala_zlog::log::{run_op, ZlogOut};
use mala_zlog::{
    encode_cmd, zlog_interface_update, AppendResult, KvCmd, KvStore, ReadConfig, ReadOutcome,
    ZlogClient, ZlogConfig,
};

use crate::report;

const MON: NodeId = NodeId(0);
const MDS0: NodeId = NodeId(20);
const WRITER: NodeId = NodeId(100);
const READER: NodeId = NodeId(101);

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Log length for the catch-up sweep.
    pub entries: usize,
    /// Batch depths to sweep; depth 1 is the scalar-read baseline.
    pub depths: Vec<usize>,
    /// Total log lengths for the recovery sweep.
    pub log_lens: Vec<usize>,
    /// Distance the checkpoint trails the tail by in the recovery sweep.
    pub ckpt_lag: usize,
    /// OSD count.
    pub osds: u32,
    /// Stripe width (objects the log fans out over).
    pub stripe_width: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            entries: 192,
            depths: vec![1, 8, 32],
            log_lens: vec![64, 128, 256],
            ckpt_lag: 16,
            osds: 4,
            stripe_width: 4,
            seed: 11,
        }
    }
}

/// One batch depth's catch-up measurements.
#[derive(Debug, Clone)]
pub struct DepthRun {
    /// Cursor read-ahead depth (1 = scalar `read` baseline).
    pub depth: usize,
    /// Positions replayed per simulated second.
    pub throughput: f64,
    /// Run length in simulated seconds.
    pub wall_s: f64,
    /// Vectored `read_batch` RADOS round trips (0 at depth 1).
    pub batch_ops: u64,
    /// Log-entry reads the OSDs served (every position, any path).
    pub reads_served: u64,
}

/// One total-log-length recovery measurement.
#[derive(Debug, Clone)]
pub struct RecoveryRun {
    /// Total log length at recovery time.
    pub log_len: usize,
    /// Whether a checkpoint (trailing by `ckpt_lag`) was available.
    pub checkpointed: bool,
    /// Positions actually replayed.
    pub replayed: u64,
    /// Simulated recovery time, snapshot restore through caught-up.
    pub recovery_ms: f64,
}

/// Both sweeps.
#[derive(Debug, Clone)]
pub struct Data {
    pub entries: usize,
    pub ckpt_lag: usize,
    pub runs: Vec<DepthRun>,
    pub recoveries: Vec<RecoveryRun>,
}

fn build(config: &Config, log: &str, reader: ZlogClient) -> Sim {
    let mut sim = Sim::new(config.seed);
    sim.add_node(MON, Monitor::new(0, vec![MON], MonConfig::default()));
    for i in 0..config.osds {
        sim.add_node(NodeId(10 + i), Osd::new(i, MON, OsdConfig::default()));
    }
    sim.add_node(
        MDS0,
        Mds::new(0, MON, MdsConfig::default(), Box::new(NoBalancer)),
    );
    sim.add_node(WRITER, ZlogClient::new(zcfg(config, log)));
    sim.add_node(READER, reader);
    let mut updates = vec![
        OsdMapView::update_pool(
            "zlogpool",
            PoolInfo {
                pg_num: 32,
                replicas: 2,
            },
        ),
        MdsMapView::update_rank(0, MDS0, true),
        zlog_interface_update(),
    ];
    for i in 0..config.osds {
        updates.push(OsdMapView::update_osd(i, NodeId(10 + i), true));
    }
    sim.inject(MON, MonMsg::Submit { seq: 1, updates });
    sim.run_for(SimDuration::from_secs(3));
    let res = run_op(&mut sim, WRITER, SimDuration::from_secs(5), |c, ctx| {
        c.setup(ctx)
    });
    assert!(
        matches!(res, AppendResult::Ok(ZlogOut::SetUp(_))),
        "{res:?}"
    );
    sim
}

fn zcfg(config: &Config, log: &str) -> ZlogConfig {
    ZlogConfig {
        name: log.to_string(),
        pool: "zlogpool".to_string(),
        stripe_width: config.stripe_width,
        mds_nodes: HashMap::from([(0, MDS0)]),
        home_rank: 0,
        monitor: MON,
    }
}

fn append(sim: &mut Sim, data: Vec<u8>) -> u64 {
    match run_op(sim, WRITER, SimDuration::from_secs(60), move |c, ctx| {
        c.append(ctx, data)
    }) {
        AppendResult::Ok(ZlogOut::Pos(p)) => p,
        other => panic!("append failed: {other:?}"),
    }
}

/// Drains `id` on the reader until an empty (caught-up) batch; returns
/// the delivered entries.
fn drain_cursor(sim: &mut Sim, id: u64, max: usize) -> Vec<(u64, ReadOutcome)> {
    let mut all = Vec::new();
    loop {
        let batch = match run_op(sim, READER, SimDuration::from_secs(60), move |c, ctx| {
            c.cursor_next_batch(ctx, id, max)
        }) {
            AppendResult::Ok(ZlogOut::CursorBatch(b)) => b,
            other => panic!("cursor batch failed: {other:?}"),
        };
        if batch.is_empty() {
            return all;
        }
        all.extend(batch);
    }
}

/// Runs one catch-up depth; panics on any lost or reordered entry.
pub fn run_depth(config: &Config, depth: usize) -> DepthRun {
    let log = format!("readbench.d{depth}");
    let reader = if depth <= 1 {
        ZlogClient::new(zcfg(config, &log))
    } else {
        ZlogClient::with_read_config(
            zcfg(config, &log),
            ReadConfig {
                readahead: depth,
                max_inflight: 4,
            },
        )
    };
    let mut sim = build(config, &log, reader);
    for i in 0..config.entries {
        append(&mut sim, format!("entry-{i}").into_bytes());
    }
    let ops_before = sim.metrics().counter("rados.read_batch_ops");
    let served_before = sim.metrics().counter("osd.reads_served");
    let t0 = sim.now();
    let mut replayed: Vec<(u64, Vec<u8>)> = Vec::new();
    if depth <= 1 {
        // Baseline: strictly one scalar read in flight.
        for pos in 0..config.entries as u64 {
            match run_op(
                &mut sim,
                READER,
                SimDuration::from_secs(60),
                move |c, ctx| c.read(ctx, pos),
            ) {
                AppendResult::Ok(ZlogOut::Read(ReadOutcome::Data(d))) => replayed.push((pos, d)),
                other => panic!("baseline read {pos} failed: {other:?}"),
            }
        }
    } else {
        let id = sim.with_actor::<ZlogClient, _>(READER, |c, ctx| c.tail_cursor(ctx));
        for (p, o) in drain_cursor(&mut sim, id, depth) {
            match o {
                ReadOutcome::Data(d) => replayed.push((p, d)),
                other => panic!("cursor read {p} came back {other:?}"),
            }
        }
    }
    let wall_s = sim.now().since(t0).as_secs_f64();
    assert_eq!(replayed.len(), config.entries, "catch-up lost entries");
    for (i, (p, d)) in replayed.iter().enumerate() {
        assert_eq!(*p, i as u64, "delivery out of order");
        assert_eq!(d, format!("entry-{i}").as_bytes(), "payload mismatch");
    }
    DepthRun {
        depth,
        throughput: config.entries as f64 / wall_s,
        wall_s,
        batch_ops: sim.metrics().counter("rados.read_batch_ops") - ops_before,
        reads_served: sim.metrics().counter("osd.reads_served") - served_before,
    }
}

/// Runs one recovery measurement at `log_len` total entries.
pub fn run_recovery(config: &Config, log_len: usize, checkpointed: bool) -> RecoveryRun {
    let log = format!(
        "recbench.l{log_len}.{}",
        if checkpointed { "ck" } else { "cold" }
    );
    let reader = ZlogClient::with_read_config(
        zcfg(config, &log),
        ReadConfig {
            readahead: 32,
            max_inflight: 4,
        },
    );
    let mut sim = build(config, &log, reader);
    let ckpt_at = log_len.saturating_sub(config.ckpt_lag) as u64;
    let mut state = KvStore::new();
    for i in 0..log_len {
        let bytes = encode_cmd(&KvCmd::put(format!("k{}", i % 8), format!("v{i}")));
        let pos = append(&mut sim, bytes.clone());
        state.apply(pos, &ReadOutcome::Data(bytes)).unwrap();
        if checkpointed && state.applied() == ckpt_at {
            let (pos, blob) = (state.applied(), state.snapshot());
            let res = run_op(
                &mut sim,
                WRITER,
                SimDuration::from_secs(60),
                move |c, ctx| c.checkpoint(ctx, pos, blob),
            );
            assert!(
                matches!(res, AppendResult::Ok(ZlogOut::CheckpointAt(_))),
                "{res:?}"
            );
            let res = run_op(
                &mut sim,
                WRITER,
                SimDuration::from_secs(60),
                move |c, ctx| c.trim_to(ctx, pos),
            );
            assert!(matches!(res, AppendResult::Ok(ZlogOut::Done)), "{res:?}");
        }
    }

    // Cold replica: restore the latest snapshot (if any), tail from it.
    let t0 = sim.now();
    let ckpt = match run_op(&mut sim, READER, SimDuration::from_secs(60), |c, ctx| {
        c.checkpoint_read(ctx)
    }) {
        AppendResult::Ok(ZlogOut::Checkpoint(c)) => c,
        other => panic!("checkpoint_read failed: {other:?}"),
    };
    let mut recovered = match &ckpt {
        Some((pos, blob)) => KvStore::restore(*pos, blob).unwrap(),
        None => KvStore::new(),
    };
    assert_eq!(ckpt.is_some(), checkpointed, "unexpected checkpoint state");
    let id = sim.with_actor::<ZlogClient, _>(READER, |c, ctx| c.tail_cursor(ctx));
    let suffix = drain_cursor(&mut sim, id, 32);
    let replayed = suffix.len() as u64;
    for (p, o) in &suffix {
        recovered.apply(*p, o).unwrap();
    }
    let recovery_ms = sim.now().since(t0).as_secs_f64() * 1e3;
    assert_eq!(recovered, state, "recovered replica diverged");
    RecoveryRun {
        log_len,
        checkpointed,
        replayed,
        recovery_ms,
    }
}

/// Runs both sweeps.
pub fn run(config: &Config) -> Data {
    Data {
        entries: config.entries,
        ckpt_lag: config.ckpt_lag,
        runs: config
            .depths
            .iter()
            .map(|&d| run_depth(config, d))
            .collect(),
        recoveries: config
            .log_lens
            .iter()
            .flat_map(|&l| {
                [
                    run_recovery(config, l, false),
                    run_recovery(config, l, true),
                ]
            })
            .collect(),
    }
}

/// Speedup of `run` over the depth-1 baseline in `data` (1.0 if absent).
pub fn speedup(data: &Data, run: &DepthRun) -> f64 {
    data.runs
        .iter()
        .find(|r| r.depth == 1)
        .map(|base| run.throughput / base.throughput)
        .unwrap_or(1.0)
}

/// Renders both sweeps as aligned tables.
pub fn render(data: &Data) -> String {
    let mut out = format!(
        "ZLog catch-up: {} entries replayed by one cold reader\n\n",
        data.entries
    );
    let headers = [
        "depth",
        "pos/s",
        "speedup",
        "wall s",
        "batch ops",
        "srv reads",
    ];
    let rows: Vec<Vec<String>> = data
        .runs
        .iter()
        .map(|r| {
            vec![
                r.depth.to_string(),
                format!("{:.0}", r.throughput),
                format!("{:.2}x", speedup(data, r)),
                format!("{:.3}", r.wall_s),
                r.batch_ops.to_string(),
                r.reads_served.to_string(),
            ]
        })
        .collect();
    out.push_str(&report::table(&headers, &rows));
    out.push_str(&format!(
        "\nKV recovery: checkpoint trails the tail by {} entries\n\n",
        data.ckpt_lag
    ));
    let headers = ["log len", "checkpoint", "replayed", "recovery ms"];
    let rows: Vec<Vec<String>> = data
        .recoveries
        .iter()
        .map(|r| {
            vec![
                r.log_len.to_string(),
                if r.checkpointed { "yes" } else { "no" }.to_string(),
                r.replayed.to_string(),
                format!("{:.2}", r.recovery_ms),
            ]
        })
        .collect();
    out.push_str(&report::table(&headers, &rows));
    out
}

/// Machine-readable rendering for `results/BENCH_zlog_read.json`.
pub fn to_json(data: &Data) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"zlog_read_scaleout\",\n");
    out.push_str(&format!("  \"entries_per_run\": {},\n", data.entries));
    out.push_str(&format!("  \"checkpoint_lag\": {},\n", data.ckpt_lag));
    out.push_str("  \"time_base\": \"simulated\",\n");
    out.push_str("  \"catchup\": [\n");
    for (i, r) in data.runs.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"depth\": {}, \"throughput_pos_per_s\": {:.1}, \
             \"speedup_vs_depth1\": {:.2}, \"wall_s\": {:.3}, \
             \"read_batch_ops\": {}, \"osd_reads_served\": {}}}{}\n",
            r.depth,
            r.throughput,
            speedup(data, r),
            r.wall_s,
            r.batch_ops,
            r.reads_served,
            if i + 1 == data.runs.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"recovery\": [\n");
    for (i, r) in data.recoveries.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"log_len\": {}, \"checkpointed\": {}, \"replayed\": {}, \
             \"recovery_ms\": {:.3}}}{}\n",
            r.log_len,
            r.checkpointed,
            r.replayed,
            r.recovery_ms,
            if i + 1 == data.recoveries.len() {
                ""
            } else {
                ","
            }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vectored_catchup_beats_scalar_reads_5x_at_depth_32() {
        let config = Config {
            entries: 96,
            depths: vec![1, 32],
            log_lens: vec![],
            ..Default::default()
        };
        let data = run(&config);
        let base = &data.runs[0];
        let deep = &data.runs[1];
        assert!(
            deep.throughput >= 5.0 * base.throughput,
            "depth 32 must be >= 5x depth 1: {:.0} vs {:.0} pos/s",
            deep.throughput,
            base.throughput
        );
        // Round-trip amplification: many positions per RADOS op.
        assert!(deep.batch_ops > 0);
        assert!(
            deep.reads_served >= 4 * deep.batch_ops,
            "batching must amortize round trips: {} reads over {} ops",
            deep.reads_served,
            deep.batch_ops
        );
    }

    #[test]
    fn checkpointed_recovery_is_flat_in_log_length() {
        let config = Config {
            log_lens: vec![48, 144],
            ckpt_lag: 12,
            ..Default::default()
        };
        let short_cold = run_recovery(&config, 48, false);
        let long_cold = run_recovery(&config, 144, false);
        let short_ck = run_recovery(&config, 48, true);
        let long_ck = run_recovery(&config, 144, true);
        // Cold replay grows with the log; checkpointed replay does not.
        assert!(long_cold.replayed == 144 && short_cold.replayed == 48);
        assert_eq!(short_ck.replayed, 12, "must replay only the suffix");
        assert_eq!(long_ck.replayed, 12, "must replay only the suffix");
        assert!(
            long_ck.recovery_ms < 1.5 * short_ck.recovery_ms,
            "checkpointed recovery must stay flat: {:.2}ms vs {:.2}ms",
            long_ck.recovery_ms,
            short_ck.recovery_ms
        );
        assert!(
            long_cold.recovery_ms > 2.0 * long_ck.recovery_ms,
            "checkpoint must beat cold replay: {:.2}ms vs {:.2}ms",
            long_cold.recovery_ms,
            long_ck.recovery_ms
        );
    }
}
