//! Figure 5: who holds the sequencer capability over time under the three
//! sharing policies.
//!
//! Two clients contend for one sequencer. The paper's dot plot shows each
//! obtained position as a dot per client; we reconstruct the equivalent
//! *hold segments* (intervals during which one client was taking
//! positions locally) from the batch samples.
//!
//! Shape to reproduce: best-effort interleaves in tiny slivers (most time
//! goes to re-distributing the capability); "delay" produces ~hold-length
//! alternating segments; "quota" produces segments of exactly the quota's
//! worth of operations.

use mala_mds::types::CapPolicyConfig;
use mala_sim::SimDuration;
use mala_zlog::SeqMode;

use crate::report;
use crate::workload::{BalancerChoice, SeqBench, SeqBenchCfg};

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Run length per policy.
    pub duration: SimDuration,
    /// Local increment cost.
    pub op_time: SimDuration,
    /// The "delay" policy's hold time (paper: 0.25 s).
    pub hold: SimDuration,
    /// The "quota" policy's budget.
    pub quota: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            duration: SimDuration::from_secs(4),
            op_time: SimDuration::from_micros(5),
            hold: SimDuration::from_millis(250),
            quota: 20_000,
            seed: 7,
        }
    }
}

/// One client's hold segments: `(start_s, end_s, positions)`.
pub type Segments = Vec<(f64, f64, u64)>;

/// Results per policy.
#[derive(Debug, Clone)]
pub struct PolicyRun {
    /// Policy label.
    pub label: String,
    /// Per-client hold segments.
    pub segments: [Segments; 2],
    /// Total positions obtained.
    pub total_ops: u64,
    /// Capability grants (exchanges) observed.
    pub exchanges: u64,
}

/// Full experiment data.
#[derive(Debug, Clone)]
pub struct Data {
    /// One run per policy: best-effort, delay, quota.
    pub runs: Vec<PolicyRun>,
}

fn run_policy(config: &Config, label: &str, policy: CapPolicyConfig) -> PolicyRun {
    let mut bench = SeqBench::build(SeqBenchCfg {
        seed: config.seed,
        mds: 1,
        sequencers: 1,
        clients_per_seq: 2,
        mode: SeqMode::Cached {
            op_time: config.op_time,
        },
        balancer: BalancerChoice::None,
        prefix: format!("fig5.{label}"),
        ..Default::default()
    });
    bench.set_policy(0, policy);
    let t0 = bench.cluster.sim.now().as_secs_f64();
    bench.start_all();
    bench.cluster.sim.run_for(config.duration);
    bench.stop_all();
    let op_s = config.op_time.as_secs_f64();
    let mut segments: [Segments; 2] = [Vec::new(), Vec::new()];
    for (i, seg) in segments.iter_mut().enumerate() {
        let name = format!("fig5.{label}.s0.c{i}.batch");
        for s in bench.cluster.sim.metrics().series(&name) {
            let end = s.at.as_secs_f64() - t0;
            let n = s.value as u64;
            seg.push((end - op_s * s.value, end, n));
        }
        // Merge back-to-back batches of one hold into single segments.
        seg.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
        let mut merged: Segments = Vec::new();
        for (start, end, n) in seg.drain(..) {
            match merged.last_mut() {
                Some((_, last_end, last_n)) if start - *last_end < op_s * 2.0 => {
                    *last_end = end;
                    *last_n += n;
                }
                _ => merged.push((start, end, n)),
            }
        }
        *seg = merged;
    }
    let exchanges = bench
        .clients
        .iter()
        .flatten()
        .map(|n| {
            bench
                .cluster
                .sim
                .actor::<mala_zlog::SeqWorkload>(*n)
                .stats
                .grants
        })
        .sum();
    PolicyRun {
        label: label.to_string(),
        total_ops: bench.total_ops(),
        segments,
        exchanges,
    }
}

/// Runs all three policies.
pub fn run(config: &Config) -> Data {
    Data {
        runs: vec![
            run_policy(config, "best-effort", CapPolicyConfig::best_effort()),
            run_policy(config, "delay", CapPolicyConfig::delay(config.hold)),
            run_policy(
                config,
                "quota",
                CapPolicyConfig::quota(config.quota, config.hold.mul(4)),
            ),
        ],
    }
}

/// Renders per-policy hold timelines.
pub fn render(data: &Data) -> String {
    let mut out =
        String::from("Figure 5: sequencer capability holds over time (2 contending clients)\n");
    for run in &data.runs {
        out.push_str(&format!(
            "\n== policy: {} — {} positions, {} exchanges ==\n",
            run.label, run.total_ops, run.exchanges
        ));
        let mut rows = Vec::new();
        for (i, segs) in run.segments.iter().enumerate() {
            let shown = segs.iter().take(8);
            for (start, end, ops) in shown {
                rows.push(vec![
                    format!("client {i}"),
                    format!("{start:.4}s"),
                    format!("{end:.4}s"),
                    format!("{:.1} ms", (end - start) * 1e3),
                    ops.to_string(),
                ]);
            }
            if segs.len() > 8 {
                rows.push(vec![
                    format!("client {i}"),
                    format!("... {} more holds", segs.len() - 8),
                    String::new(),
                    String::new(),
                    String::new(),
                ]);
            }
        }
        out.push_str(&report::table(
            &["client", "hold start", "hold end", "length", "positions"],
            &rows,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policies_shape_matches_paper() {
        let config = Config {
            duration: SimDuration::from_secs(2),
            ..Default::default()
        };
        let data = run(&config);
        let [best, delay, quota] = [&data.runs[0], &data.runs[1], &data.runs[2]];

        // Both clients get turns in all policies.
        for r in &data.runs {
            assert!(
                !r.segments[0].is_empty() && !r.segments[1].is_empty(),
                "{}: a client was starved",
                r.label
            );
        }
        // Best-effort: many short exchanges, lowest throughput.
        assert!(
            best.exchanges > delay.exchanges,
            "best-effort must exchange more ({} vs {})",
            best.exchanges,
            delay.exchanges
        );
        assert!(best.total_ops < delay.total_ops);
        assert!(best.total_ops < quota.total_ops);
        // Delay: hold lengths cluster near the configured 250 ms.
        let delay_holds: Vec<f64> = delay.segments[0]
            .iter()
            .chain(delay.segments[1].iter())
            .map(|(s, e, _)| e - s)
            .collect();
        let mean_hold = crate::report::mean(&delay_holds);
        assert!(
            (0.15..=0.35).contains(&mean_hold),
            "delay hold mean {mean_hold:.3}s not near 0.25s"
        );
        // Quota: segments carry ~quota positions each.
        let quota_sizes: Vec<f64> = quota.segments[0]
            .iter()
            .chain(quota.segments[1].iter())
            .map(|(_, _, n)| *n as f64)
            .collect();
        let mean_ops = crate::report::mean(&quota_sizes);
        assert!(
            (config.quota as f64 * 0.8..=config.quota as f64 * 1.2).contains(&mean_ops),
            "quota segments average {mean_ops} ops, expected ~{}",
            config.quota
        );
        let rendered = render(&data);
        assert!(rendered.contains("policy: quota"));
    }
}
