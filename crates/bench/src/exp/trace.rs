//! Per-stage latency breakdown of the pipelined append path, read from
//! the simulator's distributed tracer.
//!
//! A closed-loop client drives batched appends (`append_async`) through
//! the full stack. Every request carries its span context on the wire, so
//! the tracer's per-name histograms decompose end-to-end append latency
//! into: time queued at the client, the bulk sequencer grant round trip
//! (and the MDS service time inside it), the coalesced stripe write, the
//! primary's journal group-commit, and the replica-ack fan-out.
//!
//! The binary writes `results/BENCH_trace.json` alongside the rendered
//! table, plus the tracer's slow-op log (spans past the threshold, dumped
//! with full ancestry).

use std::collections::HashMap;

use mala_consensus::{MonConfig, MonMsg, Monitor};
use mala_mds::server::Mds;
use mala_mds::{MdsConfig, MdsMapView, NoBalancer};
use mala_rados::{Osd, OsdConfig, OsdMapView, PoolInfo};
use mala_sim::{NodeId, Sim, SimDuration};
use mala_zlog::log::{run_op, ZlogOut};
use mala_zlog::{zlog_interface_update, AppendResult, BatchConfig, ZlogClient, ZlogConfig};

use crate::report;

const MON: NodeId = NodeId(0);
const MDS0: NodeId = NodeId(20);
const CLIENT: NodeId = NodeId(100);

/// The stages reported, in pipeline order: `(span name, table label)`.
pub const STAGES: &[(&str, &str)] = &[
    ("zlog.append", "append end-to-end"),
    ("zlog.queue", "client queue"),
    ("zlog.grant", "sequencer grant"),
    ("mds.typeop", "mds service"),
    ("zlog.stripe_write", "stripe write"),
    ("rados.op", "rados op"),
    ("osd.op", "osd op"),
    ("osd.journal_commit", "journal commit"),
    ("osd.replica_ack", "replica ack"),
];

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Appends driven through the pipelined path.
    pub appends: usize,
    /// Client queue depth (appends kept in flight).
    pub depth: usize,
    /// OSD count.
    pub osds: u32,
    /// Stripe width (objects the log fans out over).
    pub stripe_width: u32,
    /// Flush window for partial queues.
    pub flush_window: SimDuration,
    /// Spans slower than this land in the slow-op log.
    pub slow_threshold: SimDuration,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            appends: 512,
            depth: 8,
            osds: 4,
            stripe_width: 4,
            flush_window: SimDuration::from_millis(1),
            slow_threshold: SimDuration::from_millis(20),
            seed: 7,
        }
    }
}

/// One stage's latency summary (histogram quantiles, microseconds).
#[derive(Debug, Clone)]
pub struct StageStats {
    /// Span name, e.g. `"osd.journal_commit"`.
    pub stage: String,
    /// Human label for the table.
    pub label: String,
    /// Finished spans folded into the histogram.
    pub count: u64,
    /// Median, in simulated microseconds.
    pub p50_us: f64,
    /// Tail, in simulated microseconds.
    pub p99_us: f64,
    /// Mean, in simulated microseconds.
    pub mean_us: f64,
}

/// The breakdown.
#[derive(Debug, Clone)]
pub struct Data {
    /// Appends driven.
    pub appends: usize,
    /// Client queue depth.
    pub depth: usize,
    /// One entry per [`STAGES`] row with at least one finished span.
    pub stages: Vec<StageStats>,
    /// Distinct traces rooted by appends.
    pub traces: u64,
    /// Slow-op log entries (spans past the threshold, with ancestry).
    pub slow_ops: Vec<String>,
}

fn build(config: &Config) -> Sim {
    let zcfg = ZlogConfig {
        name: "tracebench".to_string(),
        pool: "zlogpool".to_string(),
        stripe_width: config.stripe_width,
        mds_nodes: HashMap::from([(0, MDS0)]),
        home_rank: 0,
        monitor: MON,
    };
    let client = ZlogClient::with_batching(
        zcfg,
        BatchConfig {
            queue_depth: config.depth,
            flush_window: config.flush_window,
        },
    );
    let mut sim = Sim::new(config.seed);
    sim.add_node(MON, Monitor::new(0, vec![MON], MonConfig::default()));
    for i in 0..config.osds {
        sim.add_node(NodeId(10 + i), Osd::new(i, MON, OsdConfig::default()));
    }
    sim.add_node(
        MDS0,
        Mds::new(0, MON, MdsConfig::default(), Box::new(NoBalancer)),
    );
    sim.add_node(CLIENT, client);
    let mut updates = vec![
        OsdMapView::update_pool(
            "zlogpool",
            PoolInfo {
                pg_num: 32,
                replicas: 2,
            },
        ),
        MdsMapView::update_rank(0, MDS0, true),
        zlog_interface_update(),
    ];
    for i in 0..config.osds {
        updates.push(OsdMapView::update_osd(i, NodeId(10 + i), true));
    }
    sim.inject(MON, MonMsg::Submit { seq: 1, updates });
    sim.run_for(SimDuration::from_secs(3));
    let res = run_op(&mut sim, CLIENT, SimDuration::from_secs(5), |c, ctx| {
        c.setup(ctx)
    });
    assert!(
        matches!(res, AppendResult::Ok(ZlogOut::SetUp(_))),
        "{res:?}"
    );
    sim
}

/// Builds the cluster and drives the append workload; the returned sim's
/// tracer holds every span. Split from [`run`] so tests can inspect raw
/// traces.
pub fn run_sim(config: &Config) -> Sim {
    let mut sim = build(config);
    // Setup noise (map propagation, sequencer creation) stays out of the
    // measured histograms.
    sim.tracer_mut().clear();
    sim.tracer_mut()
        .set_slow_threshold(Some(config.slow_threshold));
    let mut inflight: Vec<u64> = Vec::new();
    let mut completed = 0usize;
    let mut submitted = 0usize;
    while completed < config.appends {
        while inflight.len() < config.depth && submitted < config.appends {
            let data = format!("entry-{submitted}").into_bytes();
            let op =
                sim.with_actor::<ZlogClient, _>(CLIENT, move |c, ctx| c.append_async(ctx, data));
            inflight.push(op);
            submitted += 1;
        }
        if submitted == config.appends {
            sim.with_actor::<ZlogClient, _>(CLIENT, |c, ctx| c.flush(ctx));
        }
        let deadline = sim.now() + SimDuration::from_secs(60);
        let watched = inflight.clone();
        let progressed = sim.run_until_pred(deadline, move |s| {
            let c = s.actor::<ZlogClient>(CLIENT);
            watched.iter().any(|&op| c.is_done(op))
        });
        assert!(progressed, "traced appends stalled");
        let done: Vec<u64> = inflight
            .iter()
            .copied()
            .filter(|&op| sim.actor::<ZlogClient>(CLIENT).is_done(op))
            .collect();
        for &op in &done {
            match sim.actor_mut::<ZlogClient>(CLIENT).take_result(op) {
                Some(AppendResult::Ok(ZlogOut::Pos(_))) => completed += 1,
                other => panic!("traced append failed: {other:?}"),
            }
        }
        inflight.retain(|op| !done.contains(op));
    }
    sim
}

/// Summarizes the sim's tracer into per-stage stats.
pub fn summarize(sim: &Sim, config: &Config) -> Data {
    let tracer = sim.tracer();
    let stages = STAGES
        .iter()
        .filter_map(|(name, label)| {
            let h = tracer.hist(name)?;
            Some(StageStats {
                stage: (*name).to_string(),
                label: (*label).to_string(),
                count: h.count(),
                p50_us: h.quantile(0.5).unwrap_or(0.0),
                p99_us: h.quantile(0.99).unwrap_or(0.0),
                mean_us: h.mean().unwrap_or(0.0),
            })
        })
        .collect();
    let traces = tracer
        .spans()
        .iter()
        .filter(|s| s.name == "zlog.append")
        .count() as u64;
    Data {
        appends: config.appends,
        depth: config.depth,
        stages,
        traces,
        slow_ops: tracer.slow_ops().to_vec(),
    }
}

/// Runs the whole experiment.
pub fn run(config: &Config) -> Data {
    let sim = run_sim(config);
    summarize(&sim, config)
}

/// Renders the breakdown as an aligned table plus the slow-op log.
pub fn render(data: &Data) -> String {
    let mut out = format!(
        "Traced pipelined appends: {} appends at queue depth {}, {} traces\n\n",
        data.appends, data.depth, data.traces
    );
    let headers = ["stage", "spans", "p50 us", "p99 us", "mean us"];
    let rows: Vec<Vec<String>> = data
        .stages
        .iter()
        .map(|s| {
            vec![
                s.label.clone(),
                s.count.to_string(),
                format!("{:.0}", s.p50_us),
                format!("{:.0}", s.p99_us),
                format!("{:.0}", s.mean_us),
            ]
        })
        .collect();
    out.push_str(&report::table(&headers, &rows));
    out.push_str(&format!(
        "\nslow ops (threshold): {}\n",
        data.slow_ops.len()
    ));
    for line in data.slow_ops.iter().take(10) {
        out.push_str(&format!("  {line}\n"));
    }
    out
}

/// Machine-readable rendering for `results/BENCH_trace.json`.
pub fn to_json(data: &Data) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"trace_pipelined_appends\",\n");
    out.push_str(&format!("  \"appends\": {},\n", data.appends));
    out.push_str(&format!("  \"queue_depth\": {},\n", data.depth));
    out.push_str(&format!("  \"traces\": {},\n", data.traces));
    out.push_str("  \"time_base\": \"simulated\",\n");
    out.push_str("  \"stages\": [\n");
    for (i, s) in data.stages.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"stage\": \"{}\", \"label\": \"{}\", \"spans\": {}, \
             \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"mean_us\": {:.1}}}{}\n",
            s.stage,
            s.label,
            s.count,
            s.p50_us,
            s.p99_us,
            s.mean_us,
            if i + 1 == data.stages.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"slow_ops\": {}\n", data.slow_ops.len()));
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Config {
        Config {
            appends: 48,
            depth: 8,
            ..Default::default()
        }
    }

    #[test]
    fn per_stage_histograms_cover_the_whole_pipeline() {
        let config = small();
        let data = run(&config);
        assert_eq!(data.traces as usize, config.appends);
        for required in [
            "zlog.append",
            "zlog.queue",
            "zlog.grant",
            "zlog.stripe_write",
            "osd.journal_commit",
            "osd.replica_ack",
        ] {
            let stage = data
                .stages
                .iter()
                .find(|s| s.stage == required)
                .unwrap_or_else(|| panic!("stage {required} missing from breakdown"));
            assert!(stage.count > 0, "stage {required} recorded no spans");
            assert!(
                stage.p99_us >= stage.p50_us,
                "stage {required}: p99 {} < p50 {}",
                stage.p99_us,
                stage.p50_us
            );
        }
        // The end-to-end append dominates any single stage's median.
        let append_p50 = data
            .stages
            .iter()
            .find(|s| s.stage == "zlog.append")
            .map(|s| s.p50_us)
            .unwrap_or(0.0);
        assert!(append_p50 > 0.0);
        let json = to_json(&data);
        assert!(json.contains("\"stage\": \"osd.replica_ack\""));
        assert!(render(&data).contains("journal commit"));
    }

    #[test]
    fn appends_trace_contiguously_from_client_to_replica_journal() {
        let config = small();
        let sim = run_sim(&config);
        let tracer = sim.tracer();
        // Find a replica-side journal span and walk its ancestry: the
        // whole chain must share one trace rooted at the client's append.
        let repl = tracer
            .spans()
            .iter()
            .find(|s| s.name == "osd.repl_journal")
            .expect("no replica journal span recorded");
        let chain = tracer.ancestry(repl.id);
        let names: Vec<&str> = chain.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "zlog.append",
                "zlog.stripe_write",
                "rados.op",
                "osd.op",
                "osd.replica_ack",
                "osd.repl_journal"
            ],
            "replica journal ancestry"
        );
        assert!(
            chain.iter().all(|s| s.trace == repl.trace),
            "ancestry must stay in one trace"
        );
        // The same trace also carries the grant round trip through the
        // MDS, linked by wire propagation, plus the primary's commit.
        let in_trace: Vec<&str> = tracer
            .trace_spans(repl.trace)
            .iter()
            .map(|s| s.name.as_str())
            .collect();
        for required in [
            "zlog.queue",
            "zlog.grant",
            "mds.typeop",
            "osd.journal_commit",
        ] {
            assert!(
                in_trace.contains(&required),
                "trace must contain {required}: {in_trace:?}"
            );
        }
        // Spans hop nodes: client, MDS, primary OSD, replica OSD.
        let nodes: std::collections::HashSet<_> = tracer
            .trace_spans(repl.trace)
            .iter()
            .map(|s| s.node)
            .collect();
        assert!(nodes.len() >= 4, "expected >= 4 nodes, got {nodes:?}");
    }
}
