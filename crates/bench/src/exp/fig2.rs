//! Figure 2: growth of co-designed object-storage interfaces in Ceph.
//!
//! The paper mines the Ceph git history; offline we regenerate the series
//! from the reconstructed class catalog in
//! [`mala_rados::class_registry`] (documented substitution in
//! `DESIGN.md`). The shape to reproduce: accelerating growth since 2010
//! in both classes and methods, reaching ~20 classes / 95 methods by 2016.

use mala_rados::class_registry::growth_series;

use crate::report;

/// The regenerated series.
#[derive(Debug, Clone)]
pub struct Data {
    /// `(year, cumulative classes, cumulative methods)`.
    pub series: Vec<(u16, u32, u32)>,
}

/// Regenerates the growth series.
pub fn run() -> Data {
    Data {
        series: growth_series(),
    }
}

/// Renders the figure as a table plus a sparkline-style bar per year.
pub fn render(data: &Data) -> String {
    let mut out = String::from("Figure 2: growth of co-designed object storage interfaces\n\n");
    let rows: Vec<Vec<String>> = data
        .series
        .iter()
        .map(|(year, classes, methods)| {
            vec![
                year.to_string(),
                classes.to_string(),
                methods.to_string(),
                "#".repeat(*classes as usize),
            ]
        })
        .collect();
    out.push_str(&report::table(
        &["year", "classes", "methods", "classes (bar)"],
        &rows,
    ));
    let (y0, c0, m0) = data.series[0];
    let (y1, c1, m1) = *data.series.last().expect("non-empty");
    out.push_str(&format!(
        "\n{y0}: {c0} classes / {m0} methods  →  {y1}: {c1} classes / {m1} methods\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_shape_matches_paper() {
        let data = run();
        assert_eq!(data.series.first().unwrap().0, 2010);
        assert_eq!(data.series.last().unwrap().0, 2016);
        let (_, classes, methods) = *data.series.last().unwrap();
        assert_eq!(methods, 95, "Table 1 total");
        assert!(classes >= 15);
        // Accelerating: second-half growth exceeds first-half growth.
        let c2013 = data.series.iter().find(|(y, _, _)| *y == 2013).unwrap().1;
        assert!(classes - c2013 > c2013 - 1);
        let rendered = render(&data);
        assert!(rendered.contains("2016"));
        assert!(rendered.contains("95"));
    }
}
