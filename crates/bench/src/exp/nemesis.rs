//! Availability under faults: zlog append throughput/latency before,
//! during, and after an injected OSD crash plus a sequencer failover.
//!
//! A closed-loop client appends continuously. At `crash_at` the nemesis
//! kills an OSD *without* marking it down in the osdmap — the worst case
//! for the client, which must ride on retransmit/backoff until the daemon
//! returns at `restart_at` and replays its write-ahead journal. At
//! `failover_at` the MDS hosting the sequencer is killed and restarted;
//! the client re-runs setup and CORFU recovery (seal, find tail) before
//! appends resume. The report shows the throughput dip and latency spike
//! around each event and the retry counters that absorbed them.

use mala_mds::server::Mds;
use mala_mds::{MdsConfig, NoBalancer};
use mala_rados::{Osd, OsdConfig};
use mala_sim::{Fault, FaultSchedule, Nemesis, SimDuration, SimTime};
use mala_zlog::log::{run_op, ZlogOut};
use mala_zlog::{zlog_interface_update, AppendResult, ZlogClient, ZlogConfig};
use malacology::cluster::{Cluster, ClusterBuilder};

use crate::report;

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// OSD count.
    pub osds: u32,
    /// Stripe width of the log.
    pub stripe_width: u32,
    /// Total run length.
    pub duration: SimDuration,
    /// When the nemesis kills the OSD (no osdmap update).
    pub crash_at: SimDuration,
    /// When the OSD returns and replays its journal.
    pub restart_at: SimDuration,
    /// When the sequencer MDS is killed and restarted.
    pub failover_at: SimDuration,
    /// Throughput window for the rendered series.
    pub window: SimDuration,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            osds: 5,
            stripe_width: 4,
            duration: SimDuration::from_secs(30),
            crash_at: SimDuration::from_secs(10),
            restart_at: SimDuration::from_secs(14),
            failover_at: SimDuration::from_secs(18),
            window: SimDuration::from_secs(1),
            seed: 13,
        }
    }
}

/// Aggregates for one phase of the run.
#[derive(Debug, Clone)]
pub struct PhaseStats {
    /// Phase label.
    pub label: String,
    /// Appends completed in the phase.
    pub appends: u64,
    /// Mean append latency (ms).
    pub mean_latency_ms: f64,
    /// 99th-percentile append latency (ms).
    pub p99_latency_ms: f64,
    /// Appends per second over the phase.
    pub rate: f64,
}

/// Run results.
#[derive(Debug, Clone)]
pub struct Data {
    /// `(window_start_s, appends/s)`.
    pub series: Vec<(f64, f64)>,
    /// Before / OSD-outage / recovered / post-failover stats.
    pub phases: Vec<PhaseStats>,
    /// Client retransmits absorbed by the run.
    pub retries: u64,
    /// Journal replays performed by restarted OSDs.
    pub journal_replays: u64,
    /// Tail the sequencer recovery found (must equal appends so far).
    pub recovered_tail: u64,
    /// Appends that failed terminally (must be zero).
    pub failures: u64,
}

fn phase_stats(label: &str, samples: &[(f64, f64)], from_s: f64, until_s: f64) -> PhaseStats {
    let lat: Vec<f64> = samples
        .iter()
        .filter(|(t, _)| *t >= from_s && *t < until_s)
        .map(|(_, l)| *l)
        .collect();
    let lat_us: Vec<f64> = lat.iter().map(|ms| ms * 1e3).collect();
    let p99 = mala_sim::Hist::from_values(&lat_us)
        .quantile(0.99)
        .unwrap_or(0.0)
        / 1e3;
    PhaseStats {
        label: label.to_string(),
        appends: lat.len() as u64,
        mean_latency_ms: report::mean(&lat),
        p99_latency_ms: p99,
        rate: lat.len() as f64 / (until_s - from_s).max(f64::EPSILON),
    }
}

/// Runs the experiment.
pub fn run(config: &Config) -> Data {
    let mut cluster = ClusterBuilder::new()
        .monitors(1)
        .osds(config.osds)
        .mds_ranks(1)
        .pool("logpool", 16, 2)
        .build(config.seed);
    cluster.commit_updates(vec![zlog_interface_update()]);
    let node = cluster.alloc_node();
    cluster.sim.add_node(
        node,
        ZlogClient::new(ZlogConfig {
            name: "avail".into(),
            pool: "logpool".into(),
            stripe_width: config.stripe_width,
            mds_nodes: cluster.mds_nodes(),
            home_rank: 0,
            monitor: cluster.mon(),
        }),
    );
    cluster.sim.run_for(SimDuration::from_secs(1));
    run_op(
        &mut cluster.sim,
        node,
        SimDuration::from_secs(10),
        |c, ctx| c.setup(ctx),
    );

    let t0 = cluster.sim.now();
    let victim = cluster.osd_node(0);
    let schedule = FaultSchedule::new()
        .at(t0 + config.crash_at, Fault::Crash(victim))
        .at(t0 + config.restart_at, Fault::Restart(victim));
    let journals = cluster.journals().clone();
    let mon = cluster.mon();
    let mut nemesis = Nemesis::new(schedule).on_restart(move |sim, n| {
        sim.restart(
            n,
            Osd::with_journal(n.0 - 10, mon, OsdConfig::default(), journals.journal(n)),
        );
    });

    // Closed-loop appends; each sample is (completion_s since t0, ms).
    let mut samples: Vec<(f64, f64)> = Vec::new();
    let mut failures = 0u64;
    let mut seq = 0u64;
    let append_until = |cluster: &mut Cluster,
                        nemesis: &mut Nemesis,
                        samples: &mut Vec<(f64, f64)>,
                        failures: &mut u64,
                        seq: &mut u64,
                        until: SimTime| {
        while cluster.sim.now() < until {
            let started = cluster.sim.now();
            let payload = format!("e{}", *seq).into_bytes();
            *seq += 1;
            let op = cluster
                .sim
                .with_actor::<ZlogClient, _>(node, move |c, ctx| c.append(ctx, payload));
            let deadline = started + SimDuration::from_secs(90);
            while !cluster.sim.actor::<ZlogClient>(node).is_done(op) {
                if cluster.sim.now() >= deadline {
                    break;
                }
                nemesis.run_for(&mut cluster.sim, SimDuration::from_millis(20));
            }
            match cluster.sim.actor_mut::<ZlogClient>(node).take_result(op) {
                Some(AppendResult::Ok(ZlogOut::Pos(_))) => {
                    let done = cluster.sim.now();
                    samples.push((
                        done.since(t0).as_secs_f64(),
                        done.since(started).as_micros() as f64 / 1000.0,
                    ));
                }
                _ => *failures += 1,
            }
        }
    };

    append_until(
        &mut cluster,
        &mut nemesis,
        &mut samples,
        &mut failures,
        &mut seq,
        t0 + config.failover_at,
    );

    // Sequencer failover: kill the MDS, restart it cold, re-establish the
    // namespace, and run CORFU recovery (seal the old epoch, find the
    // tail) before appends resume.
    let mds0 = cluster.mds_node(0);
    cluster.sim.crash(mds0);
    cluster.sim.restart(
        mds0,
        Mds::new(0, mon, MdsConfig::default(), Box::new(NoBalancer)),
    );
    cluster.sim.run_for(SimDuration::from_secs(1));
    run_op(
        &mut cluster.sim,
        node,
        SimDuration::from_secs(10),
        |c, ctx| c.setup(ctx),
    );
    let recovered = run_op(
        &mut cluster.sim,
        node,
        SimDuration::from_secs(30),
        |c, ctx| c.recover(ctx),
    );
    let recovered_tail = match recovered {
        AppendResult::Ok(ZlogOut::Recovered { tail, .. }) => tail,
        other => panic!("sequencer recovery failed: {other:?}"),
    };

    append_until(
        &mut cluster,
        &mut nemesis,
        &mut samples,
        &mut failures,
        &mut seq,
        t0 + config.duration,
    );

    let events: Vec<(f64, f64)> = samples.iter().map(|(t, _)| (*t, 1.0)).collect();
    let series = report::windowed_rate(
        &events,
        config.window.as_secs_f64(),
        config.duration.as_secs_f64(),
    );
    let (crash_s, restart_s, failover_s, end_s) = (
        config.crash_at.as_secs_f64(),
        config.restart_at.as_secs_f64(),
        config.failover_at.as_secs_f64(),
        config.duration.as_secs_f64(),
    );
    let phases = vec![
        phase_stats("healthy", &samples, 0.0, crash_s),
        phase_stats("osd-outage", &samples, crash_s, restart_s),
        phase_stats("osd-recovered", &samples, restart_s, failover_s),
        phase_stats("post-failover", &samples, failover_s, end_s),
    ];
    let metrics = cluster.sim.metrics();
    Data {
        series,
        phases,
        retries: metrics.counter("client.retries") + metrics.counter("zlog.retries"),
        journal_replays: metrics.counter("osd.journal_replays"),
        recovered_tail,
        failures,
    }
}

/// Renders the availability timeline and phase table.
pub fn render(data: &Data) -> String {
    let mut out = String::from(
        "Nemesis availability: zlog appends through an OSD crash (no map \
         update) and a sequencer failover\n\n",
    );
    let rows: Vec<Vec<String>> = data
        .series
        .iter()
        .map(|(t, r)| vec![format!("{t:.0}"), format!("{r:.0}")])
        .collect();
    out.push_str(&report::table(&["t (s)", "appends/s"], &rows));
    out.push('\n');
    let rows: Vec<Vec<String>> = data
        .phases
        .iter()
        .map(|p| {
            vec![
                p.label.clone(),
                p.appends.to_string(),
                format!("{:.1}", p.rate),
                format!("{:.2}", p.mean_latency_ms),
                format!("{:.2}", p.p99_latency_ms),
            ]
        })
        .collect();
    out.push_str(&report::table(
        &["phase", "appends", "ops/s", "mean ms", "p99 ms"],
        &rows,
    ));
    out.push_str(&format!(
        "\nretries absorbed: {}   journal replays: {}   recovered tail: {}   \
         terminal failures: {}\n",
        data.retries, data.journal_replays, data.recovered_tail, data.failures
    ));
    out
}

// ---- sequencer-failover scenario ----

/// Configuration for the `sequencer-failover` scenario: the MDS hosting
/// the sequencer is crashed *without any harness help* — the monitor must
/// notice the missed beacons, promote the standby, and the standby must
/// replay the metadata journal and seal the log before positions flow
/// again. The client rides through on its retry machinery.
#[derive(Debug, Clone)]
pub struct FailoverConfig {
    /// OSD count.
    pub osds: u32,
    /// Stripe width of the log.
    pub stripe_width: u32,
    /// Total run length.
    pub duration: SimDuration,
    /// When the active MDS is crashed (beacons just stop).
    pub crash_at: SimDuration,
    /// Throughput window for the rendered series.
    pub window: SimDuration,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FailoverConfig {
    fn default() -> Self {
        FailoverConfig {
            osds: 4,
            stripe_width: 4,
            duration: SimDuration::from_secs(24),
            crash_at: SimDuration::from_secs(10),
            window: SimDuration::from_secs(1),
            seed: 17,
        }
    }
}

/// Results of the `sequencer-failover` scenario.
#[derive(Debug, Clone)]
pub struct FailoverData {
    /// `(window_start_s, appends/s)`.
    pub series: Vec<(f64, f64)>,
    /// Healthy / takeover-outage / resumed stats.
    pub phases: Vec<PhaseStats>,
    /// Sequencer unavailability: crash → first append served by the
    /// promoted standby (ms).
    pub unavailability_ms: f64,
    /// Standby takeovers observed (expected: 1).
    pub takeovers: u64,
    /// Seal rounds the promoted standby ran (expected: ≥ 1).
    pub seq_seals: u64,
    /// Client retransmits absorbed by the run.
    pub retries: u64,
    /// Appends that failed terminally (must be zero).
    pub failures: u64,
}

/// Runs the sequencer-failover scenario.
pub fn run_failover(config: &FailoverConfig) -> FailoverData {
    let mut cluster = ClusterBuilder::new()
        .monitors(1)
        .osds(config.osds)
        .mds_ranks(1)
        .standby_mds(1)
        .pool("logpool", 16, 2)
        .pool("meta", 16, 2)
        .mds_config(MdsConfig {
            journal: true,
            journal_sync: true,
            ..MdsConfig::default()
        })
        .build(config.seed);
    cluster.commit_updates(vec![zlog_interface_update()]);
    let node = cluster.alloc_node();
    cluster.sim.add_node(
        node,
        ZlogClient::new(ZlogConfig {
            name: "failover".into(),
            pool: "logpool".into(),
            stripe_width: config.stripe_width,
            mds_nodes: cluster.mds_nodes(),
            home_rank: 0,
            monitor: cluster.mon(),
        }),
    );
    cluster.sim.run_for(SimDuration::from_secs(1));
    run_op(
        &mut cluster.sim,
        node,
        SimDuration::from_secs(10),
        |c, ctx| c.setup(ctx),
    );

    let t0 = cluster.sim.now();
    let crash_time = t0 + config.crash_at;
    let end = t0 + config.duration;
    let mut samples: Vec<(f64, f64)> = Vec::new();
    let mut failures = 0u64;
    let mut seq = 0u64;
    let mut crashed = false;
    let mut first_after_crash: Option<SimTime> = None;
    while cluster.sim.now() < end {
        if !crashed && cluster.sim.now() >= crash_time {
            // Beacons stop; nobody updates the map for the monitor.
            cluster.sim.crash(cluster.mds_node(0));
            crashed = true;
        }
        let started = cluster.sim.now();
        let payload = format!("f{seq}").into_bytes();
        seq += 1;
        let op = cluster
            .sim
            .with_actor::<ZlogClient, _>(node, move |c, ctx| c.append(ctx, payload));
        let deadline = started + SimDuration::from_secs(90);
        while !cluster.sim.actor::<ZlogClient>(node).is_done(op) {
            if cluster.sim.now() >= deadline {
                break;
            }
            cluster.sim.run_for(SimDuration::from_millis(20));
        }
        match cluster.sim.actor_mut::<ZlogClient>(node).take_result(op) {
            Some(AppendResult::Ok(ZlogOut::Pos(_))) => {
                let done = cluster.sim.now();
                if crashed && first_after_crash.is_none() {
                    first_after_crash = Some(done);
                }
                samples.push((
                    done.since(t0).as_secs_f64(),
                    done.since(started).as_micros() as f64 / 1000.0,
                ));
            }
            _ => failures += 1,
        }
    }

    let events: Vec<(f64, f64)> = samples.iter().map(|(t, _)| (*t, 1.0)).collect();
    let series = report::windowed_rate(
        &events,
        config.window.as_secs_f64(),
        config.duration.as_secs_f64(),
    );
    let crash_s = config.crash_at.as_secs_f64();
    let resume_s = first_after_crash
        .map(|t| t.since(t0).as_secs_f64())
        .unwrap_or(config.duration.as_secs_f64());
    let phases = vec![
        phase_stats("healthy", &samples, 0.0, crash_s),
        phase_stats("takeover", &samples, crash_s, resume_s),
        phase_stats("resumed", &samples, resume_s, config.duration.as_secs_f64()),
    ];
    let metrics = cluster.sim.metrics();
    FailoverData {
        series,
        phases,
        unavailability_ms: (resume_s - crash_s) * 1000.0,
        takeovers: metrics.counter("mds.takeovers"),
        seq_seals: metrics.counter("mds.seq_seals"),
        retries: metrics.counter("client.retries") + metrics.counter("zlog.retries"),
        failures,
    }
}

/// Renders the failover timeline and phase table.
pub fn render_failover(data: &FailoverData) -> String {
    let mut out = String::from(
        "Sequencer failover: zlog appends through an unannounced MDS crash \
         (beacon detection, standby takeover, journal replay, epoch seal)\n\n",
    );
    let rows: Vec<Vec<String>> = data
        .series
        .iter()
        .map(|(t, r)| vec![format!("{t:.0}"), format!("{r:.0}")])
        .collect();
    out.push_str(&report::table(&["t (s)", "appends/s"], &rows));
    out.push('\n');
    let rows: Vec<Vec<String>> = data
        .phases
        .iter()
        .map(|p| {
            vec![
                p.label.clone(),
                p.appends.to_string(),
                format!("{:.1}", p.rate),
                format!("{:.2}", p.mean_latency_ms),
                format!("{:.2}", p.p99_latency_ms),
            ]
        })
        .collect();
    out.push_str(&report::table(
        &["phase", "appends", "ops/s", "mean ms", "p99 ms"],
        &rows,
    ));
    out.push_str(&format!(
        "\nsequencer unavailable for {:.0} ms   takeovers: {}   seals: {}   \
         retries absorbed: {}   terminal failures: {}\n",
        data.unavailability_ms, data.takeovers, data.seq_seals, data.retries, data.failures
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn availability_dips_and_recovers() {
        let config = Config {
            duration: SimDuration::from_secs(16),
            crash_at: SimDuration::from_secs(5),
            restart_at: SimDuration::from_secs(8),
            failover_at: SimDuration::from_secs(10),
            ..Default::default()
        };
        let data = run(&config);
        assert_eq!(data.failures, 0, "appends must not fail terminally");
        let [healthy, outage, recovered, post] = [
            &data.phases[0],
            &data.phases[1],
            &data.phases[2],
            &data.phases[3],
        ];
        assert!(healthy.rate > 0.0, "no baseline throughput");
        assert!(
            outage.rate < healthy.rate,
            "outage {} !< healthy {}",
            outage.rate,
            healthy.rate
        );
        assert!(
            recovered.rate > outage.rate,
            "restart did not restore throughput"
        );
        assert!(post.rate > 0.0, "appends dead after sequencer failover");
        assert!(data.journal_replays >= 1, "restarted OSD never replayed");
        assert!(data.retries > 0, "outage should surface retransmits");
        // Positions are burned (not reused) by attempts that timed out and
        // retried, so the recovered tail bounds the acked appends from
        // above; losing one would show as tail < acked.
        assert!(
            data.recovered_tail >= healthy.appends + outage.appends + recovered.appends,
            "recovery lost acked appends: tail {} < {}",
            data.recovered_tail,
            healthy.appends + outage.appends + recovered.appends
        );
        let rendered = render(&data);
        assert!(rendered.contains("recovered tail"));
    }

    #[test]
    fn failover_window_is_bounded_and_throughput_recovers() {
        let config = FailoverConfig {
            duration: SimDuration::from_secs(16),
            crash_at: SimDuration::from_secs(6),
            ..Default::default()
        };
        let data = run_failover(&config);
        assert_eq!(data.failures, 0, "appends must not fail terminally");
        assert!(data.takeovers >= 1, "standby never took over");
        assert!(data.seq_seals >= 1, "promoted standby never sealed");
        assert!(
            data.unavailability_ms > 0.0 && data.unavailability_ms < 10_000.0,
            "implausible unavailability window: {} ms",
            data.unavailability_ms
        );
        let [healthy, _takeover, resumed] = [&data.phases[0], &data.phases[1], &data.phases[2]];
        assert!(healthy.rate > 0.0, "no baseline throughput");
        assert!(resumed.rate > 0.0, "appends dead after standby takeover");
        let rendered = render_failover(&data);
        assert!(rendered.contains("sequencer unavailable"));
    }
}
