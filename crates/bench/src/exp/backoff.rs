//! §6.2.3 "Feature: Backoff" — how aggressive the balancer's decision
//! making is, controlled entirely from the Mantle policy (`when()`
//! thresholds plus a saved-state countdown after each migration).
//!
//! Shape to reproduce (the paper omits the graphs for space but states the
//! result): "the more conservative the approach the less overall
//! throughput", and conservative policies take visibly longer to make
//! their first migration.

use mala_sim::SimDuration;
use mala_zlog::SeqMode;

use crate::report;
use crate::workload::{BalancerChoice, SeqBench, SeqBenchCfg};

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Run length.
    pub duration: SimDuration,
    /// Balancing tick.
    pub balance_interval: SimDuration,
    /// `(label, overload-ticks-required, cooldown-ticks)` sweep.
    pub variants: Vec<(String, u32, u32)>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            duration: SimDuration::from_secs(120),
            balance_interval: SimDuration::from_secs(5),
            variants: vec![
                ("aggressive".to_string(), 1, 0),
                ("moderate".to_string(), 2, 2),
                ("conservative".to_string(), 4, 4),
            ],
            seed: 21,
        }
    }
}

/// One variant's result.
#[derive(Debug, Clone)]
pub struct VariantRun {
    /// Label.
    pub label: String,
    /// Total positions over the run.
    pub total_ops: u64,
    /// Number of migrations.
    pub migrations: u64,
    /// Tick count before the first migration (None = never migrated).
    pub first_migration_s: Option<f64>,
}

/// The sweep.
#[derive(Debug, Clone)]
pub struct Data {
    /// One run per variant, in sweep order (most → least aggressive).
    pub runs: Vec<VariantRun>,
}

/// Runs the sweep.
pub fn run(config: &Config) -> Data {
    let mut runs = Vec::new();
    for (label, threshold, cooldown) in &config.variants {
        let policy = mala_mantle::backoff_policy(*threshold, *cooldown);
        let mut bench = SeqBench::build(SeqBenchCfg {
            seed: config.seed,
            mds: 3,
            osds: 0,
            sequencers: 3,
            clients_per_seq: 4,
            mode: SeqMode::RoundTrip,
            balancer: BalancerChoice::Mantle(policy),
            balance_interval: config.balance_interval,
            prefix: format!("backoff.{label}"),
        });
        let t0 = bench.cluster.sim.now();
        bench.start_all();
        // Watch for the first export while running.
        let mut first_migration_s = None;
        let step = SimDuration::from_secs(1);
        let steps = config.duration.as_micros() / step.as_micros();
        for _ in 0..steps {
            bench.cluster.sim.run_for(step);
            if first_migration_s.is_none() && bench.cluster.sim.metrics().counter("mds.exports") > 0
            {
                first_migration_s = Some(bench.cluster.sim.now().since(t0).as_secs_f64());
            }
        }
        bench.stop_all();
        runs.push(VariantRun {
            label: label.clone(),
            total_ops: bench.total_ops(),
            migrations: bench.cluster.sim.metrics().counter("mds.exports"),
            first_migration_s,
        });
    }
    Data { runs }
}

/// Renders the sweep.
pub fn render(data: &Data) -> String {
    let mut out = String::from("Backoff (§6.2.3): balancer aggressiveness sweep\n\n");
    let rows: Vec<Vec<String>> = data
        .runs
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                r.total_ops.to_string(),
                r.migrations.to_string(),
                r.first_migration_s
                    .map(|t| format!("{t:.0} s"))
                    .unwrap_or_else(|| "never".to_string()),
            ]
        })
        .collect();
    out.push_str(&report::table(
        &["policy", "total ops", "migrations", "first migration"],
        &rows,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conservative_policies_wait_longer_and_deliver_less() {
        let config = Config {
            duration: SimDuration::from_secs(80),
            ..Default::default()
        };
        let data = run(&config);
        let aggressive = &data.runs[0];
        let conservative = &data.runs[2];
        assert!(aggressive.migrations > 0);
        assert!(conservative.migrations > 0, "conservative never acted");
        let (a_first, c_first) = (
            aggressive.first_migration_s.expect("aggressive migrated"),
            conservative
                .first_migration_s
                .expect("conservative migrated"),
        );
        assert!(
            c_first > a_first,
            "conservative first migration {c_first} !> aggressive {a_first}"
        );
        assert!(
            aggressive.total_ops > conservative.total_ops,
            "aggressive {} !> conservative {}",
            aggressive.total_ops,
            conservative.total_ops
        );
        let rendered = render(&data);
        assert!(rendered.contains("first migration"));
    }
}
