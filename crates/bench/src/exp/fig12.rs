//! Figure 12: proxy mode vs. client mode over time, per sequencer.
//!
//! Two sequencers (four clients each) on a two-rank cluster.
//!
//! * **Proxy mode** (panel a): both sequencers start on rank 0; at the
//!   migration point sequencer 0 moves to rank 1 but clients keep talking
//!   to rank 0, which forwards. Shape: sequencer 0's throughput jumps
//!   (the slave only finds tails), sequencer 1's dips (its server now
//!   also forwards), cluster total rises.
//! * **Client mode** (panel b): same migration but clients are redirected
//!   to rank 1. Shape: more fair, but the cluster total is lower than
//!   proxy mode, and the rank-0 sequencer is slower (rank 0 carries the
//!   scatter-gather coordination).

use mala_mds::ServeStyle;
use mala_sim::SimDuration;
use mala_zlog::SeqMode;

use crate::report;
use crate::workload::{BalancerChoice, SeqBench, SeqBenchCfg};

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Total run length (paper: 120 s).
    pub duration: SimDuration,
    /// When the migration happens (paper: 60 s).
    pub migrate_at: SimDuration,
    /// Throughput window.
    pub window: SimDuration,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            duration: SimDuration::from_secs(120),
            migrate_at: SimDuration::from_secs(60),
            window: SimDuration::from_secs(5),
            seed: 12,
        }
    }
}

/// One mode's run.
#[derive(Debug, Clone)]
pub struct ModeRun {
    /// Mode label.
    pub label: String,
    /// Per-sequencer series `(t_s, ops/s)`.
    pub series: [Vec<(f64, f64)>; 2],
    /// Per-sequencer throughput after the migration settled.
    pub after: [f64; 2],
    /// Cluster throughput after the migration settled.
    pub cluster_after: f64,
}

/// Both modes.
#[derive(Debug, Clone)]
pub struct Data {
    /// Proxy then client.
    pub runs: Vec<ModeRun>,
}

fn run_mode(config: &Config, label: &str, style: ServeStyle) -> ModeRun {
    let mut bench = SeqBench::build(SeqBenchCfg {
        seed: config.seed,
        mds: 2,
        osds: 0,
        sequencers: 2,
        clients_per_seq: 4,
        mode: SeqMode::RoundTrip,
        balancer: BalancerChoice::None,
        balance_interval: SimDuration::from_secs(10),
        prefix: format!("fig12.{label}"),
    });
    let t0 = bench.cluster.sim.now().as_secs_f64();
    bench.start_all();
    bench.cluster.sim.run_for(config.migrate_at);
    // Manual migration of sequencer 0 (the paper drives this from Mantle;
    // the administrative path exercises the same mechanism).
    bench.migrate(0, 1, style);
    bench
        .cluster
        .sim
        .run_for(config.duration - config.migrate_at);
    bench.stop_all();
    let mut series: [Vec<(f64, f64)>; 2] = [Vec::new(), Vec::new()];
    let mut after = [0.0; 2];
    for k in 0..2 {
        let events: Vec<(f64, f64)> = bench
            .events_of_seq(k)
            .into_iter()
            .map(|(t, n)| (t - t0, n))
            .collect();
        series[k] = report::windowed_rate(
            &events,
            config.window.as_secs_f64(),
            config.duration.as_secs_f64(),
        );
        // Steady state after migration: final quarter of the run.
        let tail: Vec<f64> = series[k]
            .iter()
            .filter(|(t, _)| *t >= config.duration.as_secs_f64() * 0.75)
            .map(|(_, r)| *r)
            .collect();
        after[k] = report::mean(&tail);
    }
    ModeRun {
        label: label.to_string(),
        cluster_after: after[0] + after[1],
        series,
        after,
    }
}

/// Runs both modes.
pub fn run(config: &Config) -> Data {
    Data {
        runs: vec![
            run_mode(config, "proxy", ServeStyle::Proxy),
            run_mode(config, "client", ServeStyle::Direct),
        ],
    }
}

/// Renders both panels.
pub fn render(data: &Data, config: &Config) -> String {
    let mut out = format!(
        "Figure 12: serving modes over time (2 sequencers, 2 MDS; sequencer 0 migrates at {} s)\n",
        config.migrate_at.as_secs_f64()
    );
    for run in &data.runs {
        out.push_str(&format!("\n== {} mode ==\n", run.label));
        let rows: Vec<Vec<String>> = run.series[0]
            .iter()
            .zip(run.series[1].iter())
            .map(|((t, s0), (_, s1))| {
                vec![
                    format!("{t:.0}"),
                    format!("{s0:.0}"),
                    format!("{s1:.0}"),
                    format!("{:.0}", s0 + s1),
                ]
            })
            .collect();
        out.push_str(&report::table(
            &["t (s)", "sequencer 0", "sequencer 1", "cluster"],
            &rows,
        ));
        out.push_str(&format!(
            "after migration: s0 {:.0} ops/s, s1 {:.0} ops/s, cluster {:.0} ops/s\n",
            run.after[0], run.after[1], run.cluster_after
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proxy_beats_client_and_dynamics_match() {
        let config = Config {
            duration: SimDuration::from_secs(60),
            migrate_at: SimDuration::from_secs(30),
            ..Default::default()
        };
        let data = run(&config);
        let proxy = &data.runs[0];
        let client = &data.runs[1];
        // Before migration both sequencers share rank 0 evenly.
        let before = |r: &ModeRun, k: usize| {
            let xs: Vec<f64> = r.series[k]
                .iter()
                .filter(|(t, _)| *t > 5.0 && *t < config.migrate_at.as_secs_f64() - 5.0)
                .map(|(_, v)| *v)
                .collect();
            report::mean(&xs)
        };
        let p0_before = before(proxy, 0);
        let p1_before = before(proxy, 1);
        assert!((p0_before - p1_before).abs() / p0_before < 0.2);
        // Proxy: migrated sequencer jumps, the one left on the proxy dips.
        assert!(
            proxy.after[0] > p0_before * 1.3,
            "s0 {} !>> before {}",
            proxy.after[0],
            p0_before
        );
        assert!(proxy.after[1] < p1_before, "s1 must dip on the proxy");
        // Cluster: proxy beats client mode.
        assert!(
            proxy.cluster_after > client.cluster_after * 1.1,
            "proxy {} !> client {}",
            proxy.cluster_after,
            client.cluster_after
        );
        // Client mode is more fair but the rank-0 resident is slower.
        assert!(client.after[1] < client.after[0] * 1.05);
        let rendered = render(&data, &config);
        assert!(rendered.contains("proxy mode"));
    }
}
