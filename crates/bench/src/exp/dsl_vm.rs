//! Cephalo engine comparison: bytecode VM versus tree-walking interpreter.
//!
//! Policy evaluation is a hot path — Mantle runs `when()`/`balance()` on
//! every balancing tick on every MDS, and scripted object classes execute
//! on every request that touches them. This experiment measures both
//! engines on the two real workloads:
//!
//! * **`mantle_balance`** — the paper-style load-shedding policy: reads
//!   the per-rank metrics table, loops over the ranks, fills `targets`.
//!   Each eval is one `when()` + one `balance()` call, exactly what
//!   `MantleBalancer::decide` issues.
//! * **`class_guard`** — a representative scripted-object-class method:
//!   an epoch guard that parses its input, compares against persistent
//!   state, and updates it (the ESTALE pattern the ZLog sequencer uses).
//!
//! Per-eval latency is timed individually so the table can report p50/p99
//! alongside throughput. The binary writes `results/BENCH_dsl_vm.json`.

use std::time::Instant;

use mala_dsl::{DslEngine, EngineKind, Script, Table, Value};

use crate::report;

/// The Mantle balancer policy used for the `mantle_balance` workload.
pub const BALANCER_POLICY: &str = r#"
    function when()
        return mds[whoami]["load"] > avg * 1.1
    end
    function balance()
        local my = mds[whoami]["load"]
        local n = #mds
        local t = {}
        for i = 1, n do
            if i ~= whoami then
                t[i] = (my - avg) / (n - 1)
            else
                t[i] = 0
            end
        end
        targets = t
        return 0
    end
"#;

/// The scripted-class epoch guard used for the `class_guard` workload.
pub const GUARD_CLASS: &str = r#"
    __readonly = {"get_epoch"}
    state = {epoch = 0}
    function get_epoch(input)
        return fmt(state.epoch)
    end
    function guard(input)
        local e = tonumber(input)
        if e == nil then error("EINVAL: bad epoch") end
        if e < state.epoch then error("ESTALE: epoch too old") end
        state.epoch = e
        return "ok"
    end
"#;

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Timed evaluations per engine per workload.
    pub iters: u32,
    /// Untimed warmup evaluations.
    pub warmup: u32,
    /// Simulated MDS ranks in the metrics table.
    pub ranks: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            iters: 20_000,
            warmup: 500,
            ranks: 8,
        }
    }
}

/// One engine × workload measurement.
#[derive(Debug, Clone)]
pub struct EngineRun {
    /// Engine label (`tree` or `vm`).
    pub engine: String,
    /// Workload label (`mantle_balance` or `class_guard`).
    pub workload: String,
    /// Completed evaluations per wall-clock second.
    pub evals_per_sec: f64,
    /// Median per-eval latency, microseconds.
    pub p50_us: f64,
    /// 99th-percentile per-eval latency, microseconds.
    pub p99_us: f64,
}

/// Full comparison results.
#[derive(Debug, Clone)]
pub struct Data {
    /// Configuration used.
    pub config: Config,
    /// Four rows: {tree, vm} × {mantle_balance, class_guard}.
    pub runs: Vec<EngineRun>,
    /// VM evals/sec over tree-walker evals/sec, balancer workload.
    pub speedup_mantle: f64,
    /// VM evals/sec over tree-walker evals/sec, guard workload.
    pub speedup_guard: f64,
}

fn kind_label(kind: EngineKind) -> &'static str {
    match kind {
        EngineKind::TreeWalk => "tree",
        EngineKind::Bytecode => "vm",
    }
}

/// Installs the per-tick globals the balancer policy reads.
fn set_balancer_globals(engine: &mut DslEngine, ranks: u32) {
    let mut mds = Table::new();
    let mut total = 0.0;
    for r in 0..ranks {
        let mut row = Table::new();
        let load = 100.0 + f64::from(r) * 17.0;
        row.set_str("rank", Value::from(f64::from(r)));
        row.set_str("load", Value::from(load));
        row.set_str("cpu", Value::from(load / 100.0));
        row.set_str("coherence", Value::from(0.0));
        mds.push(Value::from_table(row));
        total += load;
    }
    engine.set_global("mds", Value::from_table(mds));
    engine.set_global("whoami", Value::from(f64::from(ranks)));
    engine.set_global("total", Value::from(total));
    engine.set_global("avg", Value::from(total / f64::from(ranks)));
    engine.set_global("targets", Value::table());
}

/// Times `iters` runs of `eval`, returning per-eval samples (µs).
fn sample<F: FnMut()>(iters: u32, warmup: u32, mut eval: F) -> Vec<f64> {
    for _ in 0..warmup {
        eval();
    }
    let mut samples = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        let t0 = Instant::now();
        eval();
        samples.push(t0.elapsed().as_secs_f64() * 1e6);
    }
    samples
}

fn summarize(engine: EngineKind, workload: &str, mut samples: Vec<f64>) -> EngineRun {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let total_us: f64 = samples.iter().sum();
    let p50 = samples[samples.len() / 2];
    let p99 = samples[((samples.len() as f64 * 0.99) as usize).min(samples.len() - 1)];
    EngineRun {
        engine: kind_label(engine).to_string(),
        workload: workload.to_string(),
        evals_per_sec: samples.len() as f64 / (total_us / 1e6),
        p50_us: p50,
        p99_us: p99,
    }
}

/// Runs the comparison.
pub fn run(config: &Config) -> Data {
    let balancer = Script::compile(BALANCER_POLICY).expect("balancer policy compiles");
    let guard = Script::compile(GUARD_CLASS).expect("guard class compiles");
    let mut runs = Vec::new();

    for kind in [EngineKind::TreeWalk, EngineKind::Bytecode] {
        let mut engine = DslEngine::new(kind);
        engine.load(&balancer).expect("balancer loads");
        set_balancer_globals(&mut engine, config.ranks);
        let samples = sample(config.iters, config.warmup, || {
            let go = engine.call("when", &[], &mut ()).expect("when() runs");
            assert!(go.truthy(), "benchmark policy must decide to act");
            engine
                .call("balance", &[], &mut ())
                .expect("balance() runs");
        });
        runs.push(summarize(kind, "mantle_balance", samples));
    }

    for kind in [EngineKind::TreeWalk, EngineKind::Bytecode] {
        let mut engine = DslEngine::new(kind);
        engine.load(&guard).expect("guard loads");
        let arg = [Value::str("7")];
        let samples = sample(config.iters, config.warmup, || {
            let out = engine.call("guard", &arg, &mut ()).expect("guard() runs");
            debug_assert_eq!(out.as_str(), Some("ok"));
        });
        runs.push(summarize(kind, "class_guard", samples));
    }

    let rate = |workload: &str, engine: &str| {
        runs.iter()
            .find(|r| r.workload == workload && r.engine == engine)
            .map(|r| r.evals_per_sec)
            .unwrap_or(f64::NAN)
    };
    Data {
        config: config.clone(),
        speedup_mantle: rate("mantle_balance", "vm") / rate("mantle_balance", "tree"),
        speedup_guard: rate("class_guard", "vm") / rate("class_guard", "tree"),
        runs,
    }
}

/// Renders the comparison as an aligned table.
pub fn render(data: &Data) -> String {
    let rows: Vec<Vec<String>> = data
        .runs
        .iter()
        .map(|r| {
            vec![
                r.workload.clone(),
                r.engine.clone(),
                format!("{:.0}", r.evals_per_sec),
                format!("{:.2}", r.p50_us),
                format!("{:.2}", r.p99_us),
            ]
        })
        .collect();
    let mut out = format!(
        "Cephalo engines: {} evals each ({} ranks), per-eval timing\n\n",
        data.config.iters, data.config.ranks
    );
    out.push_str(&report::table(
        &["workload", "engine", "evals/s", "p50_us", "p99_us"],
        &rows,
    ));
    out.push_str(&format!(
        "\nVM speedup: {:.2}x (mantle_balance), {:.2}x (class_guard)\n",
        data.speedup_mantle, data.speedup_guard
    ));
    out
}

/// Machine-readable results for `results/BENCH_dsl_vm.json`.
pub fn to_json(data: &Data) -> String {
    let mut out = String::from("{\n  \"bench\": \"dsl_vm\",\n  \"runs\": [\n");
    for (i, r) in data.runs.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"engine\": \"{}\", \"evals_per_sec\": {:.0}, \
             \"p50_us\": {:.3}, \"p99_us\": {:.3}}}{}\n",
            r.workload,
            r.engine,
            r.evals_per_sec,
            r.p50_us,
            r.p99_us,
            if i + 1 == data.runs.len() { "" } else { "," }
        ));
    }
    out.push_str(&format!(
        "  ],\n  \"speedup_mantle\": {:.2},\n  \"speedup_guard\": {:.2}\n}}\n",
        data.speedup_mantle, data.speedup_guard
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_produces_all_four_rows() {
        let config = Config {
            iters: 200,
            warmup: 20,
            ranks: 4,
        };
        let data = run(&config);
        assert_eq!(data.runs.len(), 4);
        for r in &data.runs {
            assert!(r.evals_per_sec > 0.0, "{r:?}");
            assert!(r.p99_us >= r.p50_us, "{r:?}");
        }
        assert!(data.speedup_mantle.is_finite());
        let rendered = render(&data);
        assert!(rendered.contains("mantle_balance"));
        let json = to_json(&data);
        assert!(json.contains("\"bench\": \"dsl_vm\""));
        assert!(json.contains("speedup_mantle"));
    }

    #[test]
    fn both_engines_produce_the_same_targets_table() {
        // The bench is only meaningful if the engines agree on the work.
        let script = Script::compile(BALANCER_POLICY).unwrap();
        let mut results = Vec::new();
        for kind in [EngineKind::TreeWalk, EngineKind::Bytecode] {
            let mut engine = DslEngine::new(kind);
            engine.load(&script).unwrap();
            set_balancer_globals(&mut engine, 4);
            engine.call("when", &[], &mut ()).unwrap();
            engine.call("balance", &[], &mut ()).unwrap();
            results.push(engine.global("targets").display());
        }
        assert_eq!(results[0], results[1]);
        assert!(results[0].contains(", 0}"), "{}", results[0]);
    }
}
