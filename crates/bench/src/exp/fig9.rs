//! Figure 9: throughput over time under three load-balancing regimes.
//!
//! Three sequencers (four closed-loop round-trip clients each) all start
//! on MDS rank 0 of a three-rank metadata cluster. The three regimes:
//!
//! * **No Balancing** — everything stays on rank 0 (the floor).
//! * **CephFS** — the reconstructed stock balancer reacts at its first
//!   tick (~10 s) and spreads sequencers in client (redirect) mode.
//! * **Mantle** — the sequencer-aware policy (proxy mode, conservative
//!   `when()` that waits out the import-coherence settling) takes longer
//!   to stabilise but reaches the highest plateau.

use mala_mds::CephFsMode;
use mala_sim::SimDuration;
use mala_zlog::SeqMode;

use crate::report;
use crate::workload::{BalancerChoice, SeqBench, SeqBenchCfg};

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Run length (paper plot: ~180 s).
    pub duration: SimDuration,
    /// Balancing tick (Ceph default 10 s).
    pub balance_interval: SimDuration,
    /// Sequencers (paper: 3).
    pub sequencers: u32,
    /// Clients per sequencer (paper: 4).
    pub clients_per_seq: u32,
    /// MDS ranks (paper: 3).
    pub mds: u32,
    /// OSD count (paper: 10 object-storage nodes).
    pub osds: u32,
    /// Throughput window for the rendered series.
    pub window: SimDuration,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            duration: SimDuration::from_secs(180),
            balance_interval: SimDuration::from_secs(10),
            sequencers: 3,
            clients_per_seq: 4,
            mds: 3,
            osds: 10,
            window: SimDuration::from_secs(5),
            seed: 9,
        }
    }
}

/// One regime's run.
#[derive(Debug, Clone)]
pub struct RegimeRun {
    /// Regime label.
    pub label: String,
    /// `(window_start_s, cluster ops/s)`.
    pub series: Vec<(f64, f64)>,
    /// Mean cluster throughput over the final third of the run.
    pub steady_state: f64,
    /// Migrations performed.
    pub migrations: u64,
    /// Time of the first migration (s), if any.
    pub first_migration_s: Option<f64>,
}

/// The three regimes.
#[derive(Debug, Clone)]
pub struct Data {
    /// No balancing / CephFS / Mantle, in that order.
    pub runs: Vec<RegimeRun>,
}

/// Runs one regime.
pub fn run_regime(config: &Config, label: &str, balancer: BalancerChoice) -> RegimeRun {
    let mut bench = SeqBench::build(SeqBenchCfg {
        seed: config.seed,
        mds: config.mds,
        osds: config.osds,
        sequencers: config.sequencers,
        clients_per_seq: config.clients_per_seq,
        mode: SeqMode::RoundTrip,
        balancer,
        balance_interval: config.balance_interval,
        prefix: format!("fig9.{label}"),
    });
    let t0 = bench.cluster.sim.now().as_secs_f64();
    let exports_before = bench.cluster.sim.metrics().counter("mds.exports");
    bench.start_all();
    bench.cluster.sim.run_for(config.duration);
    bench.stop_all();
    // Merge all sequencers' events into one cluster series.
    let mut events = Vec::new();
    for k in 0..config.sequencers as usize {
        for (t, n) in bench.events_of_seq(k) {
            events.push((t - t0, n));
        }
    }
    events.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
    let series = report::windowed_rate(
        &events,
        config.window.as_secs_f64(),
        config.duration.as_secs_f64(),
    );
    let tail = series.len() / 3;
    let steady: Vec<f64> = series[series.len() - tail..]
        .iter()
        .map(|(_, r)| *r)
        .collect();
    let migrations = bench.cluster.sim.metrics().counter("mds.exports") - exports_before;
    let first_migration_s = bench
        .cluster
        .sim
        .metrics()
        .series("mds.export_events")
        .first()
        .map(|s| s.at.as_secs_f64() - t0);
    RegimeRun {
        label: label.to_string(),
        series,
        steady_state: report::mean(&steady),
        migrations,
        first_migration_s,
    }
}

/// Runs all three regimes.
pub fn run(config: &Config) -> Data {
    Data {
        runs: vec![
            run_regime(config, "no-balancing", BalancerChoice::None),
            run_regime(
                config,
                "cephfs",
                BalancerChoice::CephFs(CephFsMode::Workload),
            ),
            run_regime(
                config,
                "mantle",
                BalancerChoice::Mantle(mala_mantle::SEQUENCER_AWARE_POLICY.to_string()),
            ),
        ],
    }
}

/// Renders the three time series side by side.
pub fn render(data: &Data) -> String {
    let mut out = String::from(
        "Figure 9: cluster sequencer throughput over time (3 sequencers x 4 clients)\n\n",
    );
    let mut headers = vec!["t (s)"];
    for r in &data.runs {
        headers.push(Box::leak(r.label.clone().into_boxed_str()));
    }
    let len = data.runs.iter().map(|r| r.series.len()).max().unwrap_or(0);
    let mut rows = Vec::new();
    for i in 0..len {
        let mut row = vec![data.runs[0]
            .series
            .get(i)
            .map(|(t, _)| format!("{t:.0}"))
            .unwrap_or_default()];
        for r in &data.runs {
            row.push(
                r.series
                    .get(i)
                    .map(|(_, v)| format!("{v:.0}"))
                    .unwrap_or_default(),
            );
        }
        rows.push(row);
    }
    out.push_str(&report::table(&headers, &rows));
    out.push('\n');
    for r in &data.runs {
        out.push_str(&format!(
            "{:<14} steady-state {:>8.0} ops/s   migrations: {}   first effect: {}\n",
            r.label,
            r.steady_state,
            r.migrations,
            r.first_migration_s
                .map(|t| format!("{t:.0} s"))
                .unwrap_or_else(|| "-".to_string())
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balancers_beat_no_balancing_and_mantle_wins() {
        let config = Config {
            duration: SimDuration::from_secs(90),
            balance_interval: SimDuration::from_secs(5),
            ..Default::default()
        };
        let data = run(&config);
        let [none, cephfs, mantle] = [&data.runs[0], &data.runs[1], &data.runs[2]];
        assert_eq!(none.migrations, 0);
        assert!(cephfs.migrations > 0, "cephfs never migrated");
        assert!(mantle.migrations > 0, "mantle never migrated");
        assert!(
            cephfs.steady_state > none.steady_state * 1.05,
            "cephfs {} !> none {}",
            cephfs.steady_state,
            none.steady_state
        );
        assert!(
            mantle.steady_state > cephfs.steady_state * 1.05,
            "mantle {} !> cephfs {}",
            mantle.steady_state,
            cephfs.steady_state
        );
        let rendered = render(&data);
        assert!(rendered.contains("steady-state"));
    }
}
