//! Elastic membership: RADOS throughput through a live expand (OSD join)
//! and a live drain (weight → 0) under closed-loop load.
//!
//! A closed-loop client appends to a working set of objects continuously.
//! At `join_at` a brand-new OSD is committed into the osdmap at full
//! weight; rendezvous hashing hands it a share of the PGs and it backfills
//! each one from the previous acting sets while old members keep serving.
//! At `drain_at` one of the original OSDs is drained (weight 0): it stays
//! up, sourcing backfill for its old PGs, but wins no new placements. For
//! each event the report shows bytes/objects moved, the migration window
//! (map commit → last backfill completed), the client ops bounced off
//! backfilling PGs with the typed `NotReady` error, and the throughput dip
//! relative to the healthy baseline.

use mala_rados::{ObjectId, Op};
use mala_sim::SimDuration;
use malacology::cluster::{Cluster, ClusterBuilder};

use crate::report;

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// OSD count at the start of the run.
    pub osds: u32,
    /// PGs in the data pool.
    pub pg_num: u32,
    /// Replication factor.
    pub replicas: u32,
    /// Objects in the working set (round-robin appends).
    pub objects: u32,
    /// Payload bytes per append.
    pub payload: usize,
    /// Total run length.
    pub duration: SimDuration,
    /// When the new OSD joins (osdmap commit at full weight).
    pub join_at: SimDuration,
    /// When an original OSD is drained (weight → 0).
    pub drain_at: SimDuration,
    /// Throughput window for the rendered series.
    pub window: SimDuration,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            osds: 4,
            pg_num: 32,
            replicas: 2,
            objects: 48,
            payload: 256,
            duration: SimDuration::from_secs(30),
            join_at: SimDuration::from_secs(10),
            drain_at: SimDuration::from_secs(20),
            window: SimDuration::from_secs(1),
            seed: 2017,
        }
    }
}

/// Aggregates for one phase of the run.
#[derive(Debug, Clone)]
pub struct PhaseStats {
    /// Phase label.
    pub label: String,
    /// Appends completed in the phase.
    pub appends: u64,
    /// Mean append latency (ms).
    pub mean_latency_ms: f64,
    /// 99th-percentile append latency (ms).
    pub p99_latency_ms: f64,
    /// Appends per second over the phase.
    pub rate: f64,
}

/// What one membership event cost while the cluster stayed live.
#[derive(Debug, Clone)]
pub struct EventStats {
    /// `"expand"` or `"drain"`.
    pub label: String,
    /// Bytes copied by the event's backfills.
    pub moved_bytes: u64,
    /// Objects copied by the event's backfills.
    pub moved_objects: u64,
    /// Backfills the event started.
    pub backfills: u64,
    /// Map commit → last backfill completed (ms); the window in which
    /// some PGs bounce writes with `NotReady`.
    pub window_ms: f64,
    /// Client ops bounced off backfilling PGs during the event.
    pub rejects: u64,
    /// Throughput during the migration window / healthy baseline.
    pub dip_ratio: f64,
}

/// Run results.
#[derive(Debug, Clone)]
pub struct Data {
    /// `(window_start_s, appends/s)`.
    pub series: Vec<(f64, f64)>,
    /// Healthy / expand / drain phase stats.
    pub phases: Vec<PhaseStats>,
    /// Expand then drain event stats.
    pub events: Vec<EventStats>,
    /// Client retransmits absorbed by the run.
    pub retries: u64,
    /// Appends that failed terminally (must be zero).
    pub failures: u64,
}

fn phase_stats(label: &str, samples: &[(f64, f64)], from_s: f64, until_s: f64) -> PhaseStats {
    let lat: Vec<f64> = samples
        .iter()
        .filter(|(t, _)| *t >= from_s && *t < until_s)
        .map(|(_, l)| *l)
        .collect();
    let lat_us: Vec<f64> = lat.iter().map(|ms| ms * 1e3).collect();
    let p99 = mala_sim::Hist::from_values(&lat_us)
        .quantile(0.99)
        .unwrap_or(0.0)
        / 1e3;
    PhaseStats {
        label: label.to_string(),
        appends: lat.len() as u64,
        mean_latency_ms: report::mean(&lat),
        p99_latency_ms: p99,
        rate: lat.len() as f64 / (until_s - from_s).max(f64::EPSILON),
    }
}

/// Global backfills still in flight, from the monotonic counters.
fn backfills_in_flight(cluster: &Cluster) -> u64 {
    let m = cluster.sim.metrics();
    let started = m.counter("osd.backfills_started");
    let ended = m.counter("osd.backfills_completed")
        + m.counter("osd.backfill_aborted")
        + m.counter("osd.backfill_dropped");
    started.saturating_sub(ended)
}

/// Counter snapshot taken around each membership event.
struct EventProbe {
    committed_s: f64,
    bytes: u64,
    objects: u64,
    started: u64,
    rejects: u64,
    settle_s: Option<f64>,
}

fn probe(cluster: &Cluster, committed_s: f64) -> EventProbe {
    let m = cluster.sim.metrics();
    EventProbe {
        committed_s,
        bytes: m.counter("osd.backfill_bytes"),
        objects: m.counter("osd.backfill_objects"),
        started: m.counter("osd.backfills_started"),
        rejects: m.counter("osd.backfill_rejects"),
        settle_s: None,
    }
}

fn event_stats(
    label: &str,
    cluster: &Cluster,
    p: &EventProbe,
    samples: &[(f64, f64)],
    healthy_rate: f64,
    end_s: f64,
) -> EventStats {
    let m = cluster.sim.metrics();
    let window_end_s = p.settle_s.unwrap_or(end_s);
    let window_s = (window_end_s - p.committed_s).max(f64::EPSILON);
    // The dip is measured over at least a second: a sub-window migration
    // still stalls the client for the commit round-trip, and a window
    // shorter than one op's latency would sample nothing.
    let dip_end_s = window_end_s.max(p.committed_s + 1.0).min(end_s);
    let dip_span_s = (dip_end_s - p.committed_s).max(f64::EPSILON);
    let in_window = samples
        .iter()
        .filter(|(t, _)| *t >= p.committed_s && *t < dip_end_s)
        .count();
    EventStats {
        label: label.to_string(),
        moved_bytes: m.counter("osd.backfill_bytes") - p.bytes,
        moved_objects: m.counter("osd.backfill_objects") - p.objects,
        backfills: m.counter("osd.backfills_started") - p.started,
        window_ms: window_s * 1000.0,
        rejects: m.counter("osd.backfill_rejects") - p.rejects,
        dip_ratio: (in_window as f64 / dip_span_s) / healthy_rate.max(f64::EPSILON),
    }
}

/// Runs the experiment.
pub fn run(config: &Config) -> Data {
    let mut cluster = ClusterBuilder::new()
        .monitors(1)
        .osds(config.osds)
        .pool("data", config.pg_num, config.replicas)
        .build(config.seed);
    let t0 = cluster.sim.now();
    let join_time = t0 + config.join_at;
    let drain_time = t0 + config.drain_at;
    let end = t0 + config.duration;

    let mut samples: Vec<(f64, f64)> = Vec::new();
    let mut failures = 0u64;
    let mut seq = 0u64;
    let mut expand: Option<EventProbe> = None;
    let mut drain: Option<EventProbe> = None;

    while cluster.sim.now() < end {
        let now = cluster.sim.now();
        // Events are submitted without waiting for the commit, so the
        // workload runs live through the remap. The window covers
        // operator action → cluster settled: commit, propagation, and
        // every backfill the remap starts.
        if expand.is_none() && now >= join_time {
            let p = probe(&cluster, now.since(t0).as_secs_f64());
            cluster.add_osd_nowait();
            expand = Some(p);
        }
        if drain.is_none() && cluster.sim.now() >= drain_time {
            // Settle the expand window before measuring the drain so the
            // two events' backfill counters do not overlap.
            if let Some(p) = expand.as_mut() {
                if p.settle_s.is_none() {
                    p.settle_s = Some(cluster.sim.now().since(t0).as_secs_f64());
                }
            }
            let p = probe(&cluster, cluster.sim.now().since(t0).as_secs_f64());
            cluster.drain_osd_nowait(0);
            drain = Some(p);
        }
        let started = cluster.sim.now();
        let name = format!("obj{}", seq % u64::from(config.objects));
        seq += 1;
        let result = cluster.rados(
            ObjectId::new("data", &name),
            vec![Op::Append {
                data: vec![(seq % 251) as u8; config.payload],
            }],
        );
        match result {
            Ok(_) => {
                let done = cluster.sim.now();
                samples.push((
                    done.since(t0).as_secs_f64(),
                    done.since(started).as_micros() as f64 / 1000.0,
                ));
            }
            Err(_) => failures += 1,
        }
        // Close an event's migration window the first time its backfills
        // all finish. The submit is asynchronous, so an event only
        // settles once at least one of its backfills has started —
        // otherwise in-flight == 0 merely means the commit is still
        // propagating.
        if backfills_in_flight(&cluster) == 0 {
            let now_s = cluster.sim.now().since(t0).as_secs_f64();
            let started = cluster.sim.metrics().counter("osd.backfills_started");
            for p in [&mut expand, &mut drain].into_iter().flatten() {
                if p.settle_s.is_none() && started > p.started {
                    p.settle_s = Some(now_s);
                }
            }
        }
    }

    let events_raw: Vec<(f64, f64)> = samples.iter().map(|(t, _)| (*t, 1.0)).collect();
    let series = report::windowed_rate(
        &events_raw,
        config.window.as_secs_f64(),
        config.duration.as_secs_f64(),
    );
    let (join_s, drain_s, end_s) = (
        config.join_at.as_secs_f64(),
        config.drain_at.as_secs_f64(),
        config.duration.as_secs_f64(),
    );
    let phases = vec![
        phase_stats("healthy", &samples, 0.0, join_s),
        phase_stats("expand", &samples, join_s, drain_s),
        phase_stats("drain", &samples, drain_s, end_s),
    ];
    let healthy_rate = phases[0].rate;
    let mut events = Vec::new();
    if let Some(p) = &expand {
        events.push(event_stats(
            "expand",
            &cluster,
            p,
            &samples,
            healthy_rate,
            end_s,
        ));
    }
    if let Some(p) = &drain {
        events.push(event_stats(
            "drain",
            &cluster,
            p,
            &samples,
            healthy_rate,
            end_s,
        ));
    }
    let metrics = cluster.sim.metrics();
    Data {
        series,
        phases,
        events,
        retries: metrics.counter("client.retries"),
        failures,
    }
}

/// Renders the elastic-membership timeline, phase table, and event costs.
pub fn render(data: &Data) -> String {
    let mut out = String::from(
        "Elastic membership: RADOS appends through a live OSD join and a \
         live drain (epoch-guarded backfill)\n\n",
    );
    let rows: Vec<Vec<String>> = data
        .series
        .iter()
        .map(|(t, r)| vec![format!("{t:.0}"), format!("{r:.0}")])
        .collect();
    out.push_str(&report::table(&["t (s)", "appends/s"], &rows));
    out.push('\n');
    let rows: Vec<Vec<String>> = data
        .phases
        .iter()
        .map(|p| {
            vec![
                p.label.clone(),
                p.appends.to_string(),
                format!("{:.1}", p.rate),
                format!("{:.2}", p.mean_latency_ms),
                format!("{:.2}", p.p99_latency_ms),
            ]
        })
        .collect();
    out.push_str(&report::table(
        &["phase", "appends", "ops/s", "mean ms", "p99 ms"],
        &rows,
    ));
    out.push('\n');
    let rows: Vec<Vec<String>> = data
        .events
        .iter()
        .map(|e| {
            vec![
                e.label.clone(),
                e.backfills.to_string(),
                e.moved_objects.to_string(),
                e.moved_bytes.to_string(),
                format!("{:.0}", e.window_ms),
                e.rejects.to_string(),
                format!("{:.2}", e.dip_ratio),
            ]
        })
        .collect();
    out.push_str(&report::table(
        &[
            "event",
            "backfills",
            "objects moved",
            "bytes moved",
            "window ms",
            "rejects",
            "dip ratio",
        ],
        &rows,
    ));
    out.push_str(&format!(
        "\nretries absorbed: {}   terminal failures: {}\n",
        data.retries, data.failures
    ));
    out
}

/// Serializes the run for `results/BENCH_elastic.json`.
pub fn to_json(data: &Data) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"elastic_membership\",\n");
    out.push_str("  \"time_base\": \"simulated\",\n");
    out.push_str(&format!("  \"terminal_failures\": {},\n", data.failures));
    out.push_str(&format!("  \"client_retries\": {},\n", data.retries));
    out.push_str("  \"phases\": [\n");
    for (i, p) in data.phases.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"phase\": \"{}\", \"appends\": {}, \"ops_per_s\": {:.1}, \
             \"mean_ms\": {:.3}, \"p99_ms\": {:.3}}}{}\n",
            p.label,
            p.appends,
            p.rate,
            p.mean_latency_ms,
            p.p99_latency_ms,
            if i + 1 == data.phases.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"events\": [\n");
    for (i, e) in data.events.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"event\": \"{}\", \"backfills\": {}, \"objects_moved\": {}, \
             \"bytes_moved\": {}, \"availability_window_ms\": {:.0}, \
             \"not_ready_rejects\": {}, \"throughput_dip_ratio\": {:.3}}}{}\n",
            e.label,
            e.backfills,
            e.moved_objects,
            e.moved_bytes,
            e.window_ms,
            e.rejects,
            e.dip_ratio,
            if i + 1 == data.events.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"throughput_series\": [\n");
    for (i, (t, r)) in data.series.iter().enumerate() {
        out.push_str(&format!(
            "    [{t:.1}, {r:.1}]{}\n",
            if i + 1 == data.series.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expand_and_drain_move_data_while_serving() {
        let config = Config {
            osds: 3,
            objects: 24,
            duration: SimDuration::from_secs(15),
            join_at: SimDuration::from_secs(5),
            drain_at: SimDuration::from_secs(10),
            ..Default::default()
        };
        let data = run(&config);
        assert_eq!(data.failures, 0, "appends must not fail terminally");
        assert_eq!(data.events.len(), 2, "expected expand and drain events");
        let [expand, drain] = [&data.events[0], &data.events[1]];
        assert_eq!(expand.label, "expand");
        assert_eq!(drain.label, "drain");
        for e in &data.events {
            assert!(e.backfills > 0, "{} started no backfills", e.label);
            assert!(e.moved_objects > 0, "{} moved no objects", e.label);
            assert!(e.moved_bytes > 0, "{} moved no bytes", e.label);
            assert!(e.window_ms > 0.0, "{} has an empty window", e.label);
        }
        // The cluster stayed available: every phase served appends.
        for p in &data.phases {
            assert!(p.rate > 0.0, "phase {} served nothing", p.label);
        }
        let json = to_json(&data);
        assert!(json.contains("\"bench\": \"elastic_membership\""));
        assert!(json.contains("availability_window_ms"));
        let rendered = render(&data);
        assert!(rendered.contains("bytes moved"));
    }
}
