//! Figure 10: balancing modes (a) and migration units (b).
//!
//! (a) Same cluster as Fig. 9, comparing the CephFS balancer's three load
//! metrics (CPU / workload / hybrid) against Mantle's sequencer-aware
//! policy, over several seeds. Shape: the three CephFS modes perform the
//! same (one decision structure), the CPU mode has the widest variance
//! (its metric is noisy), Mantle is best.
//!
//! (b) Two sequencers on a two-rank cluster; the Mantle policy controls
//! both the *mode* (proxy vs. client/redirect) and the *migration unit*
//! (half vs. all of the first server's load). Shape: proxy beats client
//! at the same unit, full beats half in proxy mode, and Proxy (Full) —
//! fully decoupling request handling from tail-finding — approaches 2×
//! the worst configuration.

use mala_mds::CephFsMode;
use mala_sim::SimDuration;
use mala_zlog::SeqMode;

use crate::report;
use crate::workload::{BalancerChoice, SeqBench, SeqBenchCfg};

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Run length per configuration.
    pub duration: SimDuration,
    /// Balancing tick.
    pub balance_interval: SimDuration,
    /// Seeds for the (a) variance comparison.
    pub seeds: Vec<u64>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            duration: SimDuration::from_secs(120),
            balance_interval: SimDuration::from_secs(5),
            seeds: vec![9, 10, 11],
        }
    }
}

/// One bar: mean ± std of steady-state throughput.
#[derive(Debug, Clone)]
pub struct Bar {
    /// Configuration label.
    pub label: String,
    /// Mean steady-state throughput (ops/s) across seeds.
    pub mean: f64,
    /// Standard deviation across seeds.
    pub std: f64,
}

/// Both panels.
#[derive(Debug, Clone)]
pub struct Data {
    /// Panel (a): cephfs-cpu / cephfs-workload / cephfs-hybrid / mantle.
    pub modes: Vec<Bar>,
    /// Panel (b): client-half / client-full / proxy-half / proxy-full.
    pub units: Vec<Bar>,
}

fn steady_state(
    seed: u64,
    label: &str,
    mds: u32,
    sequencers: u32,
    balancer: BalancerChoice,
    config: &Config,
) -> f64 {
    let mut bench = SeqBench::build(SeqBenchCfg {
        seed,
        mds,
        osds: 0,
        sequencers,
        clients_per_seq: 4,
        mode: SeqMode::RoundTrip,
        balancer,
        balance_interval: config.balance_interval,
        prefix: format!("fig10.{label}.{seed}"),
    });
    bench.start_all();
    // Warm-up two thirds, measure the final third.
    bench.cluster.sim.run_for(config.duration.mul(2).div(3));
    let ops_before = bench.total_ops();
    let t0 = bench.cluster.sim.now();
    bench.cluster.sim.run_for(config.duration.div(3));
    let ops = bench.total_ops() - ops_before;
    let elapsed = bench.cluster.sim.now().since(t0).as_secs_f64();
    bench.stop_all();
    ops as f64 / elapsed
}

fn bar(
    label: &str,
    mds: u32,
    sequencers: u32,
    balancer: impl Fn() -> BalancerChoice,
    config: &Config,
) -> Bar {
    let rates: Vec<f64> = config
        .seeds
        .iter()
        .map(|seed| steady_state(*seed, label, mds, sequencers, balancer(), config))
        .collect();
    Bar {
        label: label.to_string(),
        mean: report::mean(&rates),
        std: report::stddev(&rates),
    }
}

/// Runs both panels.
pub fn run(config: &Config) -> Data {
    let modes = vec![
        bar(
            "cephfs-cpu",
            3,
            3,
            || BalancerChoice::CephFs(CephFsMode::Cpu),
            config,
        ),
        bar(
            "cephfs-workload",
            3,
            3,
            || BalancerChoice::CephFs(CephFsMode::Workload),
            config,
        ),
        bar(
            "cephfs-hybrid",
            3,
            3,
            || BalancerChoice::CephFs(CephFsMode::Hybrid),
            config,
        ),
        bar(
            "mantle",
            3,
            3,
            || BalancerChoice::Mantle(mala_mantle::SEQUENCER_AWARE_POLICY.to_string()),
            config,
        ),
    ];
    let units = vec![
        bar(
            "client-half",
            2,
            2,
            || BalancerChoice::Mantle(mala_mantle::CLIENT_HALF_POLICY.to_string()),
            config,
        ),
        bar(
            "client-full",
            2,
            2,
            || BalancerChoice::Mantle(mala_mantle::CLIENT_FULL_POLICY.to_string()),
            config,
        ),
        bar(
            "proxy-half",
            2,
            2,
            || BalancerChoice::Mantle(mala_mantle::PROXY_HALF_POLICY.to_string()),
            config,
        ),
        bar(
            "proxy-full",
            2,
            2,
            || BalancerChoice::Mantle(mala_mantle::PROXY_FULL_POLICY.to_string()),
            config,
        ),
    ];
    Data { modes, units }
}

/// Renders both panels as bar tables.
pub fn render(data: &Data) -> String {
    let mut out = String::from("Figure 10(a): balancing modes (3 sequencers, 3 MDS)\n\n");
    let bars = |bars: &[Bar]| {
        let max = bars.iter().map(|b| b.mean).fold(1.0, f64::max);
        report::table(
            &["configuration", "ops/sec", "stddev", ""],
            &bars
                .iter()
                .map(|b| {
                    vec![
                        b.label.clone(),
                        format!("{:.0}", b.mean),
                        format!("{:.0}", b.std),
                        "#".repeat((b.mean / max * 40.0) as usize),
                    ]
                })
                .collect::<Vec<_>>(),
        )
    };
    out.push_str(&bars(&data.modes));
    out.push_str("\nFigure 10(b): migration units (2 sequencers, 2 MDS)\n\n");
    out.push_str(&bars(&data.units));
    let best = data.units.iter().map(|b| b.mean).fold(0.0, f64::max);
    let worst = data
        .units
        .iter()
        .map(|b| b.mean)
        .fold(f64::INFINITY, f64::min);
    out.push_str(&format!(
        "\nbest/worst migration configuration: {:.2}x\n",
        best / worst
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Config {
        Config {
            duration: SimDuration::from_secs(60),
            balance_interval: SimDuration::from_secs(5),
            seeds: vec![9, 10],
        }
    }

    #[test]
    fn modes_panel_shapes() {
        let config = quick();
        let data = run(&config);
        let by = |label: &str| {
            data.modes
                .iter()
                .chain(data.units.iter())
                .find(|b| b.label == label)
                .unwrap_or_else(|| panic!("missing {label}"))
        };
        // (a) three CephFS modes within a band; mantle best.
        let cpu = by("cephfs-cpu");
        let wl = by("cephfs-workload");
        let hy = by("cephfs-hybrid");
        let mantle = by("mantle");
        for b in [cpu, wl, hy] {
            assert!(
                mantle.mean > b.mean,
                "mantle {} !> {} {}",
                mantle.mean,
                b.label,
                b.mean
            );
        }
        let band = |a: &Bar, b: &Bar| (a.mean - b.mean).abs() / a.mean.max(b.mean) < 0.25;
        assert!(band(wl, hy), "workload {} vs hybrid {}", wl.mean, hy.mean);
        // (b) proxy beats client at same unit; full beats half in proxy.
        let ch = by("client-half");
        let cf = by("client-full");
        let ph = by("proxy-half");
        let pf = by("proxy-full");
        assert!(
            ph.mean > ch.mean,
            "proxy-half {} !> client-half {}",
            ph.mean,
            ch.mean
        );
        assert!(
            pf.mean > cf.mean,
            "proxy-full {} !> client-full {}",
            pf.mean,
            cf.mean
        );
        assert!(
            pf.mean > ph.mean,
            "proxy-full {} !> proxy-half {}",
            pf.mean,
            ph.mean
        );
        // The paper's headline: up to ~2x between best and worst.
        let spread = pf.mean / ch.mean.min(cf.mean);
        assert!(
            spread > 1.5,
            "best/worst spread {spread:.2} too small for the 2x claim"
        );
        let rendered = render(&data);
        assert!(rendered.contains("Figure 10(b)"));
    }
}
