//! Figures 6 and 7: the throughput/latency trade-off of capability
//! caching.
//!
//! Two clients contend for the sequencer with a fixed 0.25 s maximum
//! reservation while the per-grant operation *quota* sweeps across
//! orders of magnitude (plus two reference points: best-effort sharing
//! and a single client with a permanently cached exclusive capability).
//!
//! * Figure 6's shape: throughput climbs and mean latency falls as the
//!   quota grows — a large quota amortises the capability exchange; the
//!   single exclusive client is the ceiling; best-effort is the floor.
//! * Figure 7's shape: per-position latency is bimodal — the local
//!   `op_time` for the bulk of positions, with an exchange-wait tail
//!   whose weight shrinks as the quota grows; the 99th percentile stays
//!   under a millisecond for the batched configurations.

use mala_mds::types::CapPolicyConfig;
use mala_sim::SimDuration;
use mala_zlog::SeqMode;

use crate::report;
use crate::workload::{BalancerChoice, SeqBench, SeqBenchCfg};

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Run length per configuration (paper: 2 minutes).
    pub duration: SimDuration,
    /// Local increment cost.
    pub op_time: SimDuration,
    /// The fixed maximum reservation (paper: 0.25 s).
    pub reservation: SimDuration,
    /// Quota sweep.
    pub quotas: Vec<u64>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            duration: SimDuration::from_secs(20),
            op_time: SimDuration::from_micros(5),
            reservation: SimDuration::from_millis(250),
            quotas: vec![10, 100, 1_000, 10_000, 100_000],
            seed: 11,
        }
    }
}

/// One configuration's measurements.
#[derive(Debug, Clone)]
pub struct ConfigRun {
    /// Label (e.g. `quota=1000`).
    pub label: String,
    /// Combined client throughput (positions per second).
    pub throughput: f64,
    /// Mean latency to obtain a position (µs).
    pub mean_latency_us: f64,
    /// Per-client latency quantiles (µs) at p50/p90/p99/p99.9.
    pub latency_quantiles: Vec<(String, Vec<(f64, f64)>)>,
    /// Total positions.
    pub total_ops: u64,
}

/// The sweep's results.
#[derive(Debug, Clone)]
pub struct Data {
    /// One entry per configuration, in sweep order.
    pub runs: Vec<ConfigRun>,
}

fn measure(config: &Config, label: &str, clients: u32, policy: CapPolicyConfig) -> ConfigRun {
    let prefix = format!("fig6.{label}");
    let mut bench = SeqBench::build(SeqBenchCfg {
        seed: config.seed,
        mds: 1,
        sequencers: 1,
        clients_per_seq: clients,
        mode: SeqMode::Cached {
            op_time: config.op_time,
        },
        balancer: BalancerChoice::None,
        prefix: prefix.clone(),
        ..Default::default()
    });
    bench.set_policy(0, policy);
    let t0 = bench.cluster.sim.now();
    bench.start_all();
    bench.cluster.sim.run_for(config.duration);
    bench.stop_all();
    let elapsed = bench.cluster.sim.now().since(t0).as_secs_f64();
    let total_ops = bench.total_ops();
    let op_us = config.op_time.as_micros() as f64;

    // Latency distribution: each exchange wait is one sample; every other
    // position costs op_time. See the recording scheme in `mala-zlog`.
    let mut mean_lat = f64::NAN;
    let mut latency_quantiles = Vec::new();
    let metrics = bench.cluster.sim.metrics();
    let mut all_waits: Vec<f64> = Vec::new();
    for i in 0..clients {
        let name = format!("{prefix}.s0.c{i}.wait");
        let mut waits: Vec<f64> = metrics.series(&name).iter().map(|s| s.value).collect();
        all_waits.extend(waits.iter().copied());
        waits.retain(|w| w.is_finite());
        waits.sort_by(f64::total_cmp);
        let client_ops = bench
            .cluster
            .sim
            .actor::<mala_zlog::SeqWorkload>(bench.clients[0][i as usize])
            .stats
            .ops;
        let qs = mixed_quantiles(&waits, client_ops, op_us, &[50.0, 90.0, 99.0, 99.9]);
        latency_quantiles.push((format!("client {i}"), qs));
    }
    if total_ops > 0 {
        let wait_sum: f64 = all_waits.iter().sum();
        let local_ops = total_ops.saturating_sub(all_waits.len() as u64);
        mean_lat = (wait_sum + local_ops as f64 * op_us) / total_ops as f64;
    }
    ConfigRun {
        label: label.to_string(),
        throughput: total_ops as f64 / elapsed,
        mean_latency_us: mean_lat,
        latency_quantiles,
        total_ops,
    }
}

/// Quantiles of the mixed distribution: `ops - waits.len()` positions at
/// `op_us`, plus the waits (which are ≥ op_us) at the tail.
fn mixed_quantiles(sorted_waits: &[f64], ops: u64, op_us: f64, qs: &[f64]) -> Vec<(f64, f64)> {
    if ops == 0 {
        return qs.iter().map(|q| (*q, f64::NAN)).collect();
    }
    let waits = sorted_waits.len() as u64;
    let local = ops.saturating_sub(waits);
    qs.iter()
        .map(|q| {
            let rank = ((q / 100.0) * (ops - 1) as f64).round() as u64;
            let v = if rank < local {
                op_us
            } else {
                let idx = (rank - local) as usize;
                sorted_waits
                    .get(idx.min(sorted_waits.len().saturating_sub(1)))
                    .copied()
                    .unwrap_or(op_us)
            };
            (*q, v)
        })
        .collect()
}

/// Runs the full sweep.
pub fn run(config: &Config) -> Data {
    let mut runs = Vec::new();
    runs.push(measure(
        config,
        "exclusive-1-client",
        1,
        CapPolicyConfig::best_effort(),
    ));
    runs.push(measure(
        config,
        "best-effort",
        2,
        CapPolicyConfig::best_effort(),
    ));
    for quota in &config.quotas {
        runs.push(measure(
            config,
            &format!("quota={quota}"),
            2,
            CapPolicyConfig::quota(*quota, config.reservation),
        ));
    }
    Data { runs }
}

/// Renders Figure 6 (throughput + mean latency per configuration).
pub fn render(data: &Data) -> String {
    let mut out =
        String::from("Figure 6: sequencer throughput vs. capability quota (2 clients)\n\n");
    let rows: Vec<Vec<String>> = data
        .runs
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                format!("{:.0}", r.throughput),
                format!("{:.1}", r.mean_latency_us),
                r.total_ops.to_string(),
            ]
        })
        .collect();
    out.push_str(&report::table(
        &["configuration", "ops/sec", "mean latency (us)", "total ops"],
        &rows,
    ));
    out
}

/// Renders Figure 7 (per-client latency quantiles per configuration).
pub fn render_fig7(data: &Data) -> String {
    let mut out = String::from("Figure 7: latency CDF of obtaining a log position\n");
    for r in &data.runs {
        out.push_str(&format!("\n== {} ==\n", r.label));
        let mut rows = Vec::new();
        for (client, qs) in &r.latency_quantiles {
            for (q, v) in qs {
                rows.push(vec![client.clone(), format!("p{q}"), format!("{v:.1} us")]);
            }
        }
        out.push_str(&report::table(&["client", "percentile", "latency"], &rows));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> Config {
        Config {
            duration: SimDuration::from_secs(4),
            quotas: vec![10, 1_000, 100_000],
            ..Default::default()
        }
    }

    #[test]
    fn throughput_rises_and_latency_falls_with_quota() {
        let data = run(&quick_config());
        let by_label = |label: &str| {
            data.runs
                .iter()
                .find(|r| r.label == label)
                .unwrap_or_else(|| panic!("missing {label}"))
        };
        let exclusive = by_label("exclusive-1-client");
        let best = by_label("best-effort");
        let q10 = by_label("quota=10");
        let q1k = by_label("quota=1000");
        let q100k = by_label("quota=100000");
        // Monotone through the sweep.
        assert!(
            q10.throughput < q1k.throughput,
            "{} !< {}",
            q10.throughput,
            q1k.throughput
        );
        assert!(q1k.throughput < q100k.throughput);
        assert!(q10.mean_latency_us > q1k.mean_latency_us);
        assert!(q1k.mean_latency_us > q100k.mean_latency_us);
        // Exclusive single client is the ceiling.
        assert!(exclusive.throughput >= q100k.throughput * 0.9);
        // Best-effort is worse than a modest quota.
        assert!(best.throughput < q1k.throughput);
    }

    #[test]
    fn p99_under_a_millisecond_for_batched_configs() {
        let data = run(&quick_config());
        let q100k = data
            .runs
            .iter()
            .find(|r| r.label == "quota=100000")
            .unwrap();
        for (_, qs) in &q100k.latency_quantiles {
            let p99 = qs.iter().find(|(q, _)| *q == 99.0).unwrap().1;
            assert!(p99 < 1_000.0, "p99 {p99} us >= 1 ms");
        }
        let out = render(&data);
        assert!(out.contains("quota=100000"));
        let out7 = render_fig7(&data);
        assert!(out7.contains("p99"));
    }

    #[test]
    fn mixed_quantiles_math() {
        // 100 ops, 10 waits of 1000us, op_us = 5.
        let waits = vec![1000.0; 10];
        let qs = mixed_quantiles(&waits, 100, 5.0, &[50.0, 95.0]);
        assert_eq!(qs[0].1, 5.0, "median is a local op");
        assert_eq!(qs[1].1, 1000.0, "p95 lands in the wait tail");
        assert!(mixed_quantiles(&[], 0, 5.0, &[50.0])[0].1.is_nan());
    }
}
