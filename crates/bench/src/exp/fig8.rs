//! Figure 8: cluster-wide interface-update propagation latency.
//!
//! A stream of scripted-interface updates is committed through the
//! Service Metadata interface; each of 120 in-memory OSDs makes every
//! update live either via its monitor subscription or via peer gossip.
//! The measured latency is commit → live-on-OSD, matching the paper
//! ("the elapsed time following the Paxos proposal ... until each object
//! storage daemon makes the update live"), so it excludes the proposal
//! accumulation interval — which is reported separately, comparing the
//! stock 1 s interval to the paper's tuned ~222 ms quorum.

use mala_consensus::{MapUpdate, MonConfig, MonMsg, SERVICE_MAP_INTERFACES};
use mala_rados::OsdConfig;
use mala_sim::{SimDuration, SimTime};
use malacology::cluster::{Cluster, ClusterBuilder};

use crate::report;

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of OSDs (paper: 120, in-memory).
    pub osds: u32,
    /// Fraction of OSDs subscribed to the monitor (the rest learn by
    /// gossip).
    pub subscriber_fraction: f64,
    /// Number of interface updates to install (paper: 1000).
    pub updates: u32,
    /// Gap between successive updates.
    pub update_gap: SimDuration,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            osds: 120,
            subscriber_fraction: 0.1,
            updates: 200,
            update_gap: SimDuration::from_millis(1100),
            seed: 8,
        }
    }
}

/// Results.
#[derive(Debug, Clone)]
pub struct Data {
    /// Every per-OSD install latency (ms), sorted ascending.
    pub latencies_ms: Vec<f64>,
    /// Distinct committed interface epochs. Updates submitted within one
    /// proposal-accumulation interval share an epoch (that is the point
    /// of the interval), so this can be below the submitted count.
    pub committed_epochs: u32,
    /// Committed epochs that went live on every OSD.
    pub complete_updates: u32,
    /// Mean submit→commit latency (ms) with the stock 1 s proposal
    /// interval.
    pub commit_ms_1s: f64,
    /// Mean submit→commit latency (ms) with the tuned 222 ms interval.
    pub commit_ms_222ms: f64,
}

fn build(config: &Config, proposal_interval: SimDuration) -> Cluster {
    let mon_config = MonConfig {
        proposal_interval,
        ..MonConfig::default()
    };
    let subscribe_cutoff = (f64::from(config.osds) * config.subscriber_fraction).ceil() as u32;
    // ClusterBuilder applies one OsdConfig to all OSDs; for split
    // subscription we build the cluster with subscribers disabled and
    // patch per-OSD config by adding OSDs manually. Simpler: subscribe
    // only the first `cutoff` by building with subscribe disabled and
    // re-adding. Instead, we build two groups through the builder's
    // single config by making subscription the default and removing it
    // via gossip-only daemons added afterwards — but node ids must match
    // the osdmap. The cleanest available knob: build with subscription
    // ON for everyone when the fraction is 1.0, otherwise OFF for
    // everyone and manually subscribe the first group by injecting
    // subscription messages (equivalent wire behaviour).
    let osd_config = OsdConfig {
        subscribe_to_monitor: false,
        ..OsdConfig::default()
    };
    let mut cluster = ClusterBuilder::new()
        .monitors(3)
        .osds(config.osds)
        .osd_config(osd_config)
        .mon_config(mon_config)
        .rados_clients(0)
        .build(config.seed);
    // Subscribe the first `cutoff` OSDs by having them send Subscribe
    // (what `subscribe_to_monitor = true` would have done at start).
    for i in 0..subscribe_cutoff.min(config.osds) {
        let node = cluster.osd_node(i);
        let mon = cluster.mon();
        cluster
            .sim
            .with_actor::<mala_rados::Osd, _>(node, |_, ctx| {
                ctx.send(
                    mon,
                    MonMsg::Subscribe {
                        map: SERVICE_MAP_INTERFACES.to_string(),
                    },
                );
            });
    }
    cluster.sim.run_for(SimDuration::from_secs(2));
    cluster
}

/// Measures mean submit→commit latency over a few updates.
fn commit_latency_ms(config: &Config, interval: SimDuration) -> f64 {
    let mut cluster = build(config, interval);
    let mon = cluster.mon();
    let mut latencies = Vec::new();
    for i in 0..10u64 {
        let t0 = cluster.sim.now();
        cluster.sim.inject(
            mon,
            MonMsg::Submit {
                seq: 100 + i,
                updates: vec![MapUpdate::set(
                    SERVICE_MAP_INTERFACES,
                    "probe",
                    format!("function v{i}() end").into_bytes(),
                )],
            },
        );
        let before = commit_count(&cluster);
        let deadline = t0 + SimDuration::from_secs(10);
        cluster
            .sim
            .run_until_pred(deadline, |s| commit_count_sim(s) > before);
        latencies.push(cluster.sim.now().since(t0).as_millis_f64());
    }
    report::mean(&latencies)
}

fn commit_count(cluster: &Cluster) -> usize {
    commit_count_sim(&cluster.sim)
}

fn commit_count_sim(sim: &mala_sim::Sim) -> usize {
    sim.metrics()
        .series(&format!("mon.commit.{SERVICE_MAP_INTERFACES}"))
        .len()
}

/// Runs the propagation experiment.
pub fn run(config: &Config) -> Data {
    let mut cluster = build(config, MonConfig::default().proposal_interval);
    let mon = cluster.mon();
    // Stream the updates.
    for i in 0..config.updates {
        cluster.sim.inject(
            mon,
            MonMsg::Submit {
                seq: 1000 + u64::from(i),
                updates: vec![MapUpdate::set(
                    SERVICE_MAP_INTERFACES,
                    "bench_iface",
                    format!("function ping(input) return \"{i}\" end").into_bytes(),
                )],
            },
        );
        cluster.sim.run_for(config.update_gap);
    }
    // Drain: let the last updates propagate.
    cluster.sim.run_for(SimDuration::from_secs(10));

    // Commit time per epoch (first monitor observation wins).
    let metrics = cluster.sim.metrics();
    let mut commit_at: std::collections::HashMap<u64, SimTime> = std::collections::HashMap::new();
    for s in metrics.series(&format!("mon.commit.{SERVICE_MAP_INTERFACES}")) {
        commit_at.entry(s.value as u64).or_insert(s.at);
    }
    // Install times per epoch per OSD.
    let mut latencies_ms = Vec::new();
    let mut complete = 0;
    for (epoch, committed) in &commit_at {
        let series = metrics.series(&format!("osd.iface_live.e{epoch}"));
        if series.len() as u32 >= config.osds {
            complete += 1;
        }
        for s in series {
            latencies_ms.push(s.at.saturating_since(*committed).as_millis_f64());
        }
    }
    latencies_ms.retain(|l| l.is_finite());
    latencies_ms.sort_by(f64::total_cmp);

    let commit_ms_1s = commit_latency_ms(config, SimDuration::from_secs(1));
    let commit_ms_222ms = commit_latency_ms(config, SimDuration::from_millis(222));
    Data {
        latencies_ms,
        committed_epochs: commit_at.len() as u32,
        complete_updates: complete,
        commit_ms_1s,
        commit_ms_222ms,
    }
}

/// Renders the CDF and the proposal-interval comparison.
pub fn render(data: &Data, config: &Config) -> String {
    let mut out = format!(
        "Figure 8: interface-update propagation latency ({} OSDs, {} updates)\n\n",
        config.osds, config.updates
    );
    let qs = report::quantiles(&data.latencies_ms, &[10.0, 50.0, 90.0, 99.0, 100.0]);
    let rows: Vec<Vec<String>> = qs
        .iter()
        .map(|(q, v)| vec![format!("p{q}"), format!("{v:.1} ms")])
        .collect();
    out.push_str(&report::table(&["percentile", "install latency"], &rows));
    out.push_str(&format!(
        "\ncommitted epochs: {} (from {} submitted updates)\nepochs fully live on all OSDs: {}/{}\n",
        data.committed_epochs, config.updates, data.complete_updates, data.committed_epochs
    ));
    out.push_str(&format!(
        "\nproposal accumulation interval (submit -> commit):\n  1 s interval   : {:.0} ms mean\n  222 ms interval: {:.0} ms mean\n",
        data.commit_ms_1s, data.commit_ms_222ms
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn propagation_is_fast_and_complete() {
        let config = Config {
            osds: 24,
            updates: 8,
            update_gap: SimDuration::from_millis(1200),
            ..Default::default()
        };
        let data = run(&config);
        assert!(data.committed_epochs >= 5, "too few epochs committed");
        assert_eq!(
            data.complete_updates, data.committed_epochs,
            "a committed epoch never became live everywhere"
        );
        assert_eq!(
            data.latencies_ms.len(),
            (config.osds * data.committed_epochs) as usize
        );
        let p90 = report::quantiles(&data.latencies_ms, &[90.0])[0].1;
        // Paper: < 54 ms at p90 on 120 RAM OSDs. Gossip-dominated here too.
        assert!(p90 < 100.0, "p90 propagation {p90} ms too slow");
        // Shorter proposal interval must lower commit latency.
        assert!(
            data.commit_ms_222ms < data.commit_ms_1s,
            "222 ms ({}) !< 1 s ({})",
            data.commit_ms_222ms,
            data.commit_ms_1s
        );
        let rendered = render(&data, &config);
        assert!(rendered.contains("p90"));
    }
}
