//! Mantle: the programmable metadata load balancer (paper §5.1),
//! re-implemented on Malacology's interfaces.
//!
//! Administrators inject Cephalo code that decides *when*, *where*, and
//! *how much* metadata load to migrate; the MDS supplies the mechanisms
//! (metrics, migration, proxy/direct serving). Compared to the original
//! hard-coded implementation, the Malacology version gains exactly what
//! the paper lists:
//!
//! * **Versioning** (§5.1.1) — the active policy version is the epoch of
//!   the monitor's `mantle` service-metadata map; every MDS converges on
//!   the same policy.
//! * **Durability** (§5.1.2) — the map stores only a *pointer* (an object
//!   name); the policy source itself lives in a RADOS object, fetched
//!   with a timeout of half the balancing tick.
//! * **Central logging** (§5.1.3) — policy `print`/`log` output and
//!   install errors go to the monitor cluster log, not per-node files.
//!
//! # Policy API
//!
//! A policy script sees these globals on each balancing tick:
//!
//! * `whoami` — this rank's 1-based index into `mds`.
//! * `mds` — array of per-rank tables `{rank, load, cpu, coherence}`
//!   ordered by rank (so `mds[whoami]` is this rank).
//! * `total`, `avg` — cluster load sum and mean.
//! * `state` — a table preserved across ticks (for backoff counters; the
//!   paper's "save state" facility).
//!
//! Callbacks:
//!
//! * `when()` → truthy if this rank should migrate now (required).
//! * `balance()` — fills the global `targets` table:
//!   `targets[i] = <load to ship to mds[i]>` (required).
//! * Optional globals set by `balance()`: `mode = "proxy"|"client"`
//!   (serving style, default client) and `only_type = "sequencer"` to
//!   restrict inode selection (the type-aware policies of §5.2.1).
//!
//! ```text
//! -- the paper's migration-unit example (§6.2.2):
//! targets[whoami + 1] = mds[whoami]["load"] / 2
//! ```

pub mod policies;

use mala_dsl::{DslEngine, EngineKind, Script, Table, Value};
use mala_mds::balancer::{BalanceView, Balancer, Export};
use mala_mds::{FileType, ServeStyle};

pub use policies::*;

/// The key in the `mantle` service-metadata map holding the policy
/// object's name (the "version pointer").
pub const MANTLE_POLICY_KEY: &str = "balancer";

/// The Mantle balancer: evaluates an installed Cephalo policy each tick.
pub struct MantleBalancer {
    engine: Option<DslEngine>,
    engine_kind: EngineKind,
    version: u64,
    log: Vec<String>,
    /// Policy installed directly at construction (tests / static setups);
    /// map-driven installs override it.
    bootstrap: Option<String>,
}

impl MantleBalancer {
    /// A balancer with no policy yet (it waits for the `mantle` map).
    /// Policies run on the bytecode VM; see [`MantleBalancer::with_engine`]
    /// to select the reference tree-walker instead.
    pub fn new() -> MantleBalancer {
        MantleBalancer::with_engine(EngineKind::default())
    }

    /// A balancer whose policies run on the given engine.
    pub fn with_engine(kind: EngineKind) -> MantleBalancer {
        MantleBalancer {
            engine: None,
            engine_kind: kind,
            version: 0,
            log: Vec::new(),
            bootstrap: None,
        }
    }

    /// A balancer with a policy compiled in at construction time.
    ///
    /// # Panics
    ///
    /// Panics if the bootstrap policy does not compile — a harness bug.
    pub fn with_policy(source: &str) -> MantleBalancer {
        MantleBalancer::with_policy_engine(source, EngineKind::default())
    }

    /// [`MantleBalancer::with_policy`] on an explicit engine.
    ///
    /// # Panics
    ///
    /// Panics if the bootstrap policy does not compile — a harness bug.
    pub fn with_policy_engine(source: &str, kind: EngineKind) -> MantleBalancer {
        let mut b = MantleBalancer::with_engine(kind);
        b.install(source, 0).expect("bootstrap policy must compile");
        b.bootstrap = Some(source.to_string());
        b
    }

    /// Which engine evaluates policies.
    pub fn engine_kind(&self) -> EngineKind {
        self.engine_kind
    }

    /// The installed policy version.
    pub fn version(&self) -> u64 {
        self.version
    }

    fn install(&mut self, source: &str, version: u64) -> Result<(), String> {
        let script = Script::compile(source).map_err(|e| e.to_string())?;
        let mut engine = DslEngine::new(self.engine_kind);
        engine.load(&script).map_err(|e| e.to_string())?;
        if !engine.has_function("when") || !engine.has_function("balance") {
            return Err("policy must define when() and balance()".to_string());
        }
        // Persistent state table surviving across ticks (but not across
        // policy versions, as in Mantle).
        engine.set_global("state", Value::table());
        self.engine = Some(engine);
        self.version = version;
        self.log.push(format!("mantle: policy v{version} loaded"));
        Ok(())
    }

    fn build_globals(engine: &mut DslEngine, view: &BalanceView) {
        let mut mds = Table::new();
        let mut total = 0.0;
        for sample in &view.loads {
            let mut row = Table::new();
            row.set_str("rank", Value::from(f64::from(sample.rank)));
            row.set_str("load", Value::from(sample.total()));
            row.set_str("cpu", Value::from(sample.cpu));
            row.set_str("coherence", Value::from(sample.coherence));
            mds.push(Value::from_table(row));
            total += sample.total();
        }
        let whoami = view
            .loads
            .iter()
            .position(|l| l.rank == view.whoami)
            .map(|i| i + 1)
            .unwrap_or(1);
        let n = view.loads.len().max(1) as f64;
        engine.set_global("mds", Value::from_table(mds));
        engine.set_global("whoami", Value::from(whoami as f64));
        engine.set_global("total", Value::from(total));
        engine.set_global("avg", Value::from(total / n));
        engine.set_global("targets", Value::table());
        engine.set_global("mode", Value::Nil);
        engine.set_global("only_type", Value::Nil);
    }

    /// Maps the policy's `targets` load amounts onto concrete inodes.
    fn exports_from_targets(
        &mut self,
        view: &BalanceView,
        targets: &Table,
        style: ServeStyle,
        only_type: Option<FileType>,
    ) -> Vec<Export> {
        // Selection pool: my inodes, hottest first (already sorted).
        let mut pool: Vec<(u64, f64)> = view
            .my_inodes
            .iter()
            .filter(|(_, _, ftype)| only_type.as_ref().map(|t| t == ftype).unwrap_or(true))
            .map(|(ino, rate, _)| (*ino, *rate))
            .collect();
        let mut exports = Vec::new();
        for (key, amount) in targets.iter() {
            let mala_dsl::value::Key::Int(idx) = key else {
                continue;
            };
            let Some(amount) = amount.as_num() else {
                continue;
            };
            if amount <= 0.0 {
                continue;
            }
            // `targets` indexes the mds array (1-based).
            let Some(sample) = view.loads.get((idx - 1).max(0) as usize) else {
                continue;
            };
            let target_rank = sample.rank;
            if target_rank == view.whoami {
                continue;
            }
            let mut remaining = amount;
            while remaining > 0.0 && !pool.is_empty() {
                let (ino, rate) = pool.remove(0);
                exports.push(Export {
                    ino,
                    target: target_rank,
                    style,
                });
                remaining -= rate.max(1.0);
            }
        }
        if !exports.is_empty() {
            self.log.push(format!(
                "mantle v{}: exporting {} inodes ({:?})",
                self.version,
                exports.len(),
                style
            ));
        }
        exports
    }
}

impl Default for MantleBalancer {
    fn default() -> Self {
        MantleBalancer::new()
    }
}

impl Balancer for MantleBalancer {
    fn name(&self) -> &str {
        "mantle"
    }

    fn decide(&mut self, view: &BalanceView) -> Vec<Export> {
        let Some(mut engine) = self.engine.take() else {
            return Vec::new();
        };
        Self::build_globals(&mut engine, view);
        let exports = (|| {
            let go = engine
                .call("when", &[], &mut ())
                .map_err(|e| format!("when(): {e}"))?;
            if !go.truthy() {
                return Ok(Vec::new());
            }
            engine
                .call("balance", &[], &mut ())
                .map_err(|e| format!("balance(): {e}"))?;
            let style = match engine.global("mode").as_str() {
                Some("proxy") => ServeStyle::Proxy,
                _ => ServeStyle::Direct,
            };
            let only_type = match engine.global("only_type").as_str() {
                Some("sequencer") => Some(FileType::Sequencer),
                Some("dir") => Some(FileType::Dir),
                Some("regular") => Some(FileType::Regular),
                _ => None,
            };
            let targets = engine.global("targets");
            let exports = match targets.as_table() {
                Some(t) => {
                    let t = t.borrow().clone();
                    self.exports_from_targets(view, &t, style, only_type)
                }
                None => Vec::new(),
            };
            Ok::<_, String>(exports)
        })();
        // Policy print()/log() output feeds the central log.
        for line in engine.take_output() {
            self.log.push(format!("mantle v{}: {line}", self.version));
        }
        self.engine = Some(engine);
        match exports {
            Ok(exports) => exports,
            Err(e) => {
                self.log
                    .push(format!("mantle v{}: ERROR {e}", self.version));
                Vec::new()
            }
        }
    }

    fn install_policy(&mut self, source: &str, version: u64) -> Result<(), String> {
        if version <= self.version && self.engine.is_some() {
            return Ok(()); // stale or duplicate install
        }
        match self.install(source, version) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.log
                    .push(format!("mantle: policy v{version} rejected: {e}"));
                Err(e)
            }
        }
    }

    fn wants_policy(&self) -> bool {
        true
    }

    fn take_log(&mut self) -> Vec<String> {
        std::mem::take(&mut self.log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mala_mds::balancer::LoadSample;
    use mala_sim::SimTime;

    fn view(whoami: u32, loads: Vec<(u32, f64, f64)>, inodes: Vec<(u64, f64)>) -> BalanceView {
        BalanceView {
            whoami,
            now: SimTime::ZERO,
            loads: loads
                .into_iter()
                .map(|(rank, req, coh)| LoadSample {
                    rank,
                    req_rate: req,
                    cpu: req / 100.0,
                    coherence: coh,
                })
                .collect(),
            my_inodes: inodes
                .into_iter()
                .map(|(ino, rate)| (ino, rate, FileType::Sequencer))
                .collect(),
        }
    }

    #[test]
    fn no_policy_means_no_action() {
        let mut b = MantleBalancer::new();
        assert!(b
            .decide(&view(
                0,
                vec![(0, 100.0, 0.0), (1, 0.0, 0.0)],
                vec![(5, 100.0)]
            ))
            .is_empty());
        assert!(b.wants_policy());
    }

    #[test]
    fn paper_migration_unit_snippet_moves_half() {
        // The verbatim policy fragment from §6.2.2.
        let mut b = MantleBalancer::with_policy(
            r#"
            function when()
                return mds[whoami]["load"] > avg * 1.1
            end
            function balance()
                targets[whoami + 1] = mds[whoami]["load"] / 2
            end
            "#,
        );
        let v = view(
            0,
            vec![(0, 300.0, 0.0), (1, 0.0, 0.0)],
            vec![(10, 150.0), (11, 150.0)],
        );
        let exports = b.decide(&v);
        // Half of 300 = 150 → the hottest inode (150) suffices.
        assert_eq!(exports.len(), 1);
        assert_eq!(exports[0].target, 1);
        assert_eq!(exports[0].style, ServeStyle::Direct);
    }

    #[test]
    fn proxy_mode_and_type_filter_respected() {
        let mut b = MantleBalancer::with_policy(
            r#"
            function when() return true end
            function balance()
                mode = "proxy"
                only_type = "sequencer"
                targets[2] = total
            end
            "#,
        );
        let mut v = view(
            0,
            vec![(0, 200.0, 0.0), (1, 0.0, 0.0)],
            vec![(10, 100.0), (11, 100.0)],
        );
        // Add a non-sequencer inode that must not be selected.
        v.my_inodes.push((99, 500.0, FileType::Regular));
        let exports = b.decide(&v);
        assert_eq!(exports.len(), 2);
        assert!(exports.iter().all(|e| e.style == ServeStyle::Proxy));
        assert!(exports.iter().all(|e| e.ino != 99));
    }

    #[test]
    fn when_false_suppresses_migration() {
        let mut b = MantleBalancer::with_policy(
            r#"
            function when() return false end
            function balance() targets[2] = 100 end
            "#,
        );
        assert!(b
            .decide(&view(
                0,
                vec![(0, 500.0, 0.0), (1, 0.0, 0.0)],
                vec![(5, 500.0)]
            ))
            .is_empty());
    }

    #[test]
    fn state_persists_across_ticks_for_backoff() {
        // Countdown policy: acts only every third tick (§6.2.3 backoff).
        let mut b = MantleBalancer::with_policy(
            r#"
            function when()
                if state.count == nil then state.count = 0 end
                state.count = state.count + 1
                return state.count % 3 == 0
            end
            function balance()
                targets[2] = mds[whoami]["load"]
            end
            "#,
        );
        let v = view(0, vec![(0, 100.0, 0.0), (1, 0.0, 0.0)], vec![(5, 100.0)]);
        assert!(b.decide(&v).is_empty());
        assert!(b.decide(&v).is_empty());
        assert_eq!(b.decide(&v).len(), 1);
        assert!(b.decide(&v).is_empty());
    }

    #[test]
    fn policy_errors_are_logged_not_fatal() {
        let mut b = MantleBalancer::with_policy(
            r#"
            function when() return nil + 1 end
            function balance() end
            "#,
        );
        let v = view(0, vec![(0, 100.0, 0.0), (1, 0.0, 0.0)], vec![(5, 100.0)]);
        assert!(b.decide(&v).is_empty());
        let log = b.take_log();
        assert!(log.iter().any(|l| l.contains("ERROR")), "{log:?}");
    }

    #[test]
    fn version_gating_rejects_stale_installs() {
        let mut b = MantleBalancer::new();
        b.install_policy("function when() return false end function balance() end", 5)
            .unwrap();
        assert_eq!(b.version(), 5);
        // Stale version ignored (Ok, but not installed).
        b.install_policy("function when() return true end function balance() end", 3)
            .unwrap();
        assert_eq!(b.version(), 5);
        // Missing callbacks rejected.
        assert!(b.install_policy("x = 1", 9).is_err());
        assert_eq!(b.version(), 5);
    }

    #[test]
    fn policy_print_goes_to_central_log() {
        let mut b = MantleBalancer::with_policy(
            r#"
            function when()
                print("deciding on rank", whoami)
                return false
            end
            function balance() end
            "#,
        );
        let v = view(0, vec![(0, 1.0, 0.0), (1, 0.0, 0.0)], vec![]);
        b.decide(&v);
        let log = b.take_log();
        assert!(
            log.iter().any(|l| l.contains("deciding on rank")),
            "{log:?}"
        );
    }

    #[test]
    fn default_engine_is_bytecode_vm() {
        assert_eq!(MantleBalancer::new().engine_kind(), EngineKind::Bytecode);
    }

    #[test]
    fn both_engines_reach_the_same_decision() {
        // The paper's migration-unit policy, plus state and print, run on
        // the tree-walker and the VM: identical exports and log output.
        let policy = r#"
            function when()
                if state.tick == nil then state.tick = 0 end
                state.tick = state.tick + 1
                print("tick", state.tick)
                return mds[whoami]["load"] > avg * 1.1
            end
            function balance()
                mode = "proxy"
                targets[whoami + 1] = mds[whoami]["load"] / 2
            end
        "#;
        let v = view(
            0,
            vec![(0, 300.0, 0.0), (1, 0.0, 0.0)],
            vec![(10, 150.0), (11, 150.0)],
        );
        let mut tree = MantleBalancer::with_policy_engine(policy, EngineKind::TreeWalk);
        let mut vmb = MantleBalancer::with_policy_engine(policy, EngineKind::Bytecode);
        for _ in 0..3 {
            let et = tree.decide(&v);
            let ev = vmb.decide(&v);
            assert_eq!(et, ev);
            assert!(!et.is_empty());
            assert!(et.iter().all(|e| e.style == ServeStyle::Proxy));
            assert_eq!(tree.take_log(), vmb.take_log());
        }
    }

    #[test]
    fn coherence_visible_to_policy() {
        let mut b = MantleBalancer::with_policy(
            r#"
            function when()
                -- Conservative: wait for the target to settle.
                return mds[2]["coherence"] < 10
            end
            function balance()
                targets[2] = mds[whoami]["load"]
            end
            "#,
        );
        let busy = view(0, vec![(0, 100.0, 0.0), (1, 0.0, 50.0)], vec![(5, 100.0)]);
        assert!(b.decide(&busy).is_empty(), "must wait for settle");
        let settled = view(0, vec![(0, 100.0, 0.0), (1, 0.0, 1.0)], vec![(5, 100.0)]);
        assert_eq!(b.decide(&settled).len(), 1);
    }
}
