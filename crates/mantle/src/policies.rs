//! Stock Mantle policies used by the paper's experiments and this
//! repository's benches/examples. All are plain Cephalo source, shippable
//! through the monitor's `mantle` map like any administrator-written
//! policy.

use mala_consensus::{MapUpdate, SERVICE_MAP_MANTLE};

use crate::MANTLE_POLICY_KEY;

/// Greedy spread (a Mantle rendering of the stock CephFS heuristic): when
/// this rank is ≥10% above the mean, ship half the excess to the
/// least-loaded rank, client mode.
pub const GREEDY_SPREAD_POLICY: &str = r#"
function least_loaded()
    local best = nil
    local i = 1
    while mds[i] ~= nil do
        if i ~= whoami then
            if best == nil or mds[i]["load"] < mds[best]["load"] then
                best = i
            end
        end
        i = i + 1
    end
    return best
end

function when()
    return mds[whoami]["load"] > avg * 1.1
end

function balance()
    local target = least_loaded()
    if target ~= nil then
        targets[target] = (mds[whoami]["load"] - avg) / 2
    end
end
"#;

/// The sequencer-aware policy of §6.2 (the "Mantle" curve in Fig. 9):
/// conservative `when()` — wait until the candidate target's residual
/// coherence load has settled — then migrate whole sequencers, proxy
/// mode, one target per tick.
pub const SEQUENCER_AWARE_POLICY: &str = r#"
function pick_target()
    local best = nil
    local i = 1
    while mds[i] ~= nil do
        if i ~= whoami then
            if best == nil or mds[i]["load"] < mds[best]["load"] then
                best = i
            end
        end
        i = i + 1
    end
    return best
end

function when()
    if mds[whoami]["load"] <= avg * 1.1 then
        return false
    end
    -- Conservative: do not pile onto a server still absorbing an import
    -- (the ~60 s cache-coherence settling the paper describes).
    local target = pick_target()
    if target == nil then return false end
    if mds[target]["coherence"] > avg * 0.05 + 1 then
        return false
    end
    return true
end

function balance()
    local target = pick_target()
    if target ~= nil then
        mode = "proxy"
        only_type = "sequencer"
        -- One sequencer's worth of load per tick: cautious, stepwise.
        targets[target] = (mds[whoami]["load"] - avg) / 2
    end
end
"#;

/// §6.2.2 "Proxy Mode (Half)": ship half this rank's load to the next
/// rank, proxy mode. Contains the paper's verbatim snippet.
pub const PROXY_HALF_POLICY: &str = r#"
function when()
    -- One-shot, driven from the first server only (the Fig. 10b setup).
    -- Wait until the target rank's heartbeat is visible, or the latch
    -- would burn on a tick where the export cannot be routed.
    if mds[whoami + 1] == nil then return false end
    return whoami == 1 and state.done == nil and mds[whoami]["load"] > 0
end

function balance()
    mode = "proxy"
    targets[whoami + 1] = mds[whoami]["load"] / 2
    state.done = 1
end
"#;

/// §6.2.2 "Proxy Mode (Full)": ship everything, proxy mode.
pub const PROXY_FULL_POLICY: &str = r#"
function when()
    if mds[whoami + 1] == nil then return false end
    return whoami == 1 and state.done == nil and mds[whoami]["load"] > 0
end

function balance()
    mode = "proxy"
    targets[whoami + 1] = mds[whoami]["load"]
    state.done = 1
end
"#;

/// "Client Mode (Half)": redirecting variant of the half-migration.
pub const CLIENT_HALF_POLICY: &str = r#"
function when()
    if mds[whoami + 1] == nil then return false end
    return whoami == 1 and state.done == nil and mds[whoami]["load"] > 0
end

function balance()
    mode = "client"
    targets[whoami + 1] = mds[whoami]["load"] / 2
    state.done = 1
end
"#;

/// "Client Mode (Full)": redirecting variant of the full migration.
pub const CLIENT_FULL_POLICY: &str = r#"
function when()
    if mds[whoami + 1] == nil then return false end
    return whoami == 1 and state.done == nil and mds[whoami]["load"] > 0
end

function balance()
    mode = "client"
    targets[whoami + 1] = mds[whoami]["load"]
    state.done = 1
end
"#;

/// §6.2.3 backoff: act only after `threshold` consecutive overloaded
/// ticks, and hold off `cooldown` ticks after each migration (the
/// "countdown after a migration" built on Mantle's saved state).
pub fn backoff_policy(threshold: u32, cooldown: u32) -> String {
    format!(
        r#"
function when()
    if state.overloaded == nil then state.overloaded = 0 end
    if state.cooldown == nil then state.cooldown = 0 end
    if state.cooldown > 0 then
        state.cooldown = state.cooldown - 1
        return false
    end
    if mds[whoami]["load"] > avg * 1.1 then
        state.overloaded = state.overloaded + 1
    else
        state.overloaded = 0
    end
    return state.overloaded >= {threshold}
end

function balance()
    local best = nil
    local i = 1
    while mds[i] ~= nil do
        if i ~= whoami then
            if best == nil or mds[i]["load"] < mds[best]["load"] then
                best = i
            end
        end
        i = i + 1
    end
    if best ~= nil then
        mode = "proxy"
        targets[best] = (mds[whoami]["load"] - avg) / 2
        state.overloaded = 0
        state.cooldown = {cooldown}
    end
end
"#
    )
}

/// The monitor update pointing the cluster at a new policy object
/// (the §5.1.1 version pointer). The policy source itself must already be
/// durable in RADOS under `object_name`.
pub fn policy_pointer_update(object_name: &str) -> MapUpdate {
    MapUpdate::set(
        SERVICE_MAP_MANTLE,
        MANTLE_POLICY_KEY,
        object_name.as_bytes().to_vec(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MantleBalancer;
    use mala_dsl::Script;
    use mala_mds::balancer::{BalanceView, Balancer, LoadSample};
    use mala_mds::{FileType, ServeStyle};
    use mala_sim::SimTime;

    /// `(rank, req_rate, coherence)` triples plus this rank's sequencer
    /// inodes `(ino, rate)`.
    fn view(whoami: u32, loads: &[(u32, f64, f64)], inodes: &[(u64, f64)]) -> BalanceView {
        BalanceView {
            whoami,
            now: SimTime::ZERO,
            loads: loads
                .iter()
                .map(|&(rank, req_rate, coherence)| LoadSample {
                    rank,
                    req_rate,
                    cpu: req_rate / 100.0,
                    coherence,
                })
                .collect(),
            my_inodes: inodes
                .iter()
                .map(|&(ino, rate)| (ino, rate, FileType::Sequencer))
                .collect(),
        }
    }

    #[test]
    fn all_stock_policies_compile() {
        for (name, src) in [
            ("greedy", GREEDY_SPREAD_POLICY),
            ("seq-aware", SEQUENCER_AWARE_POLICY),
            ("proxy-half", PROXY_HALF_POLICY),
            ("proxy-full", PROXY_FULL_POLICY),
            ("client-half", CLIENT_HALF_POLICY),
            ("client-full", CLIENT_FULL_POLICY),
        ] {
            Script::compile(src).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
        Script::compile(&backoff_policy(3, 5)).unwrap();
    }

    #[test]
    fn pointer_update_targets_mantle_map() {
        let up = policy_pointer_update("mantle_policy_v7");
        assert_eq!(up.map, SERVICE_MAP_MANTLE);
        assert_eq!(up.key, MANTLE_POLICY_KEY);
        assert_eq!(up.value.unwrap(), b"mantle_policy_v7".to_vec());
    }

    #[test]
    fn greedy_spread_picks_least_loaded_rank_above_threshold() {
        let mut b = MantleBalancer::with_policy(GREEDY_SPREAD_POLICY);
        // 10% over the mean is the trigger; exactly at the mean is not.
        let calm = view(0, &[(0, 100.0, 0.0), (1, 100.0, 0.0)], &[(5, 100.0)]);
        assert!(b.decide(&calm).is_empty(), "balanced cluster must not move");
        // Overloaded: rank 2 is the least loaded and must be the target.
        let hot = view(
            0,
            &[(0, 300.0, 0.0), (1, 60.0, 0.0), (2, 30.0, 0.0)],
            &[(5, 150.0), (6, 150.0)],
        );
        let exports = b.decide(&hot);
        assert!(!exports.is_empty(), "30% overload must migrate");
        assert!(exports.iter().all(|e| e.target == 2), "{exports:?}");
        assert!(exports.iter().all(|e| e.style == ServeStyle::Direct));
    }

    #[test]
    fn sequencer_aware_policy_waits_for_coherence_to_settle() {
        let mut b = MantleBalancer::with_policy(SEQUENCER_AWARE_POLICY);
        // The candidate target still carries residual coherence load from
        // a recent import: the conservative when() must hold off.
        let absorbing = view(
            0,
            &[(0, 300.0, 0.0), (1, 10.0, 50.0)],
            &[(5, 150.0), (6, 150.0)],
        );
        assert!(
            b.decide(&absorbing).is_empty(),
            "must not pile onto a settling server"
        );
        // Settled: same skew, coherence drained → migrate, proxy mode,
        // sequencers only.
        let mut settled = view(
            0,
            &[(0, 300.0, 0.0), (1, 10.0, 0.0)],
            &[(5, 150.0), (6, 150.0)],
        );
        settled.my_inodes.push((99, 500.0, FileType::Regular));
        let exports = b.decide(&settled);
        assert!(!exports.is_empty(), "settled target must receive load");
        assert!(exports.iter().all(|e| e.target == 1));
        assert!(exports.iter().all(|e| e.style == ServeStyle::Proxy));
        assert!(
            exports.iter().all(|e| e.ino != 99),
            "only_type=sequencer must exclude the regular file"
        );
    }

    #[test]
    fn proxy_half_latch_fires_once_from_rank_one() {
        let mut b = MantleBalancer::with_policy(PROXY_HALF_POLICY);
        // Policy indexes the mds array 1-based: `whoami == 1` is the
        // first rank, `whoami + 1` the second.
        let v = view(
            0,
            &[(0, 200.0, 0.0), (1, 0.0, 0.0)],
            &[(5, 100.0), (6, 100.0)],
        );
        let first = b.decide(&v);
        assert!(!first.is_empty(), "one-shot must fire on the first tick");
        assert!(first.iter().all(|e| e.style == ServeStyle::Proxy));
        assert!(
            b.decide(&v).is_empty(),
            "state.done latch must suppress the second tick"
        );
        // The second rank never initiates.
        let mut other = MantleBalancer::with_policy(PROXY_HALF_POLICY);
        let v2 = view(1, &[(0, 0.0, 0.0), (1, 200.0, 0.0)], &[(5, 200.0)]);
        assert!(other.decide(&v2).is_empty());
    }

    #[test]
    fn backoff_policy_waits_threshold_ticks_then_cools_down() {
        let mut b = MantleBalancer::with_policy(&backoff_policy(3, 2));
        let hot = view(0, &[(0, 300.0, 0.0), (1, 0.0, 0.0)], &[(5, 300.0)]);
        // Two overloaded ticks: below the threshold, no action.
        assert!(b.decide(&hot).is_empty());
        assert!(b.decide(&hot).is_empty());
        // Third consecutive overloaded tick: migrate.
        assert!(!b.decide(&hot).is_empty());
        // Cooldown of 2 swallows the next two ticks, then the overload
        // counter must climb back to the threshold again.
        assert!(b.decide(&hot).is_empty(), "cooldown tick 1");
        assert!(b.decide(&hot).is_empty(), "cooldown tick 2");
        assert!(b.decide(&hot).is_empty(), "overloaded tick 1 after reset");
        assert!(b.decide(&hot).is_empty(), "overloaded tick 2 after reset");
        assert!(!b.decide(&hot).is_empty(), "threshold reached again");
    }

    #[test]
    fn rollback_needs_a_fresh_version_number() {
        // §5.1.1: the active policy is whatever version the pointer names;
        // rolling back means re-shipping the old source under a *newer*
        // version, not re-installing the old number.
        let always = "function when() return true end\nfunction balance() targets[2] = 100 end";
        let never = "function when() return false end\nfunction balance() end";
        let mut b = MantleBalancer::new();
        b.install_policy(always, 1).unwrap();
        b.install_policy(never, 2).unwrap();
        let v = view(0, &[(0, 200.0, 0.0), (1, 0.0, 0.0)], &[(5, 200.0)]);
        assert!(b.decide(&v).is_empty(), "v2 (never) is active");
        // Replaying the old version number is a no-op…
        b.install_policy(always, 1).unwrap();
        assert_eq!(b.version(), 2);
        assert!(b.decide(&v).is_empty(), "stale install must not activate");
        // …but the same source under version 3 takes effect.
        b.install_policy(always, 3).unwrap();
        assert_eq!(b.version(), 3);
        assert!(!b.decide(&v).is_empty(), "rolled-back policy is live again");
    }

    #[test]
    fn rollback_resets_policy_state() {
        // state does not leak across versions: the proxy-half latch fires
        // again after a rollback re-install.
        let mut b = MantleBalancer::with_policy(PROXY_HALF_POLICY);
        let v = view(0, &[(0, 200.0, 0.0), (1, 0.0, 0.0)], &[(5, 200.0)]);
        assert!(!b.decide(&v).is_empty());
        assert!(b.decide(&v).is_empty(), "latched");
        b.install_policy(PROXY_HALF_POLICY, u64::MAX).unwrap();
        assert!(
            !b.decide(&v).is_empty(),
            "fresh install must start with empty state"
        );
    }
}
