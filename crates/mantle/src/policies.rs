//! Stock Mantle policies used by the paper's experiments and this
//! repository's benches/examples. All are plain Cephalo source, shippable
//! through the monitor's `mantle` map like any administrator-written
//! policy.

use mala_consensus::{MapUpdate, SERVICE_MAP_MANTLE};

use crate::MANTLE_POLICY_KEY;

/// Greedy spread (a Mantle rendering of the stock CephFS heuristic): when
/// this rank is ≥10% above the mean, ship half the excess to the
/// least-loaded rank, client mode.
pub const GREEDY_SPREAD_POLICY: &str = r#"
function least_loaded()
    local best = nil
    local i = 1
    while mds[i] ~= nil do
        if i ~= whoami then
            if best == nil or mds[i]["load"] < mds[best]["load"] then
                best = i
            end
        end
        i = i + 1
    end
    return best
end

function when()
    return mds[whoami]["load"] > avg * 1.1
end

function balance()
    local target = least_loaded()
    if target ~= nil then
        targets[target] = (mds[whoami]["load"] - avg) / 2
    end
end
"#;

/// The sequencer-aware policy of §6.2 (the "Mantle" curve in Fig. 9):
/// conservative `when()` — wait until the candidate target's residual
/// coherence load has settled — then migrate whole sequencers, proxy
/// mode, one target per tick.
pub const SEQUENCER_AWARE_POLICY: &str = r#"
function pick_target()
    local best = nil
    local i = 1
    while mds[i] ~= nil do
        if i ~= whoami then
            if best == nil or mds[i]["load"] < mds[best]["load"] then
                best = i
            end
        end
        i = i + 1
    end
    return best
end

function when()
    if mds[whoami]["load"] <= avg * 1.1 then
        return false
    end
    -- Conservative: do not pile onto a server still absorbing an import
    -- (the ~60 s cache-coherence settling the paper describes).
    local target = pick_target()
    if target == nil then return false end
    if mds[target]["coherence"] > avg * 0.05 + 1 then
        return false
    end
    return true
end

function balance()
    local target = pick_target()
    if target ~= nil then
        mode = "proxy"
        only_type = "sequencer"
        -- One sequencer's worth of load per tick: cautious, stepwise.
        targets[target] = (mds[whoami]["load"] - avg) / 2
    end
end
"#;

/// §6.2.2 "Proxy Mode (Half)": ship half this rank's load to the next
/// rank, proxy mode. Contains the paper's verbatim snippet.
pub const PROXY_HALF_POLICY: &str = r#"
function when()
    -- One-shot, driven from the first server only (the Fig. 10b setup).
    -- Wait until the target rank's heartbeat is visible, or the latch
    -- would burn on a tick where the export cannot be routed.
    if mds[whoami + 1] == nil then return false end
    return whoami == 1 and state.done == nil and mds[whoami]["load"] > 0
end

function balance()
    mode = "proxy"
    targets[whoami + 1] = mds[whoami]["load"] / 2
    state.done = 1
end
"#;

/// §6.2.2 "Proxy Mode (Full)": ship everything, proxy mode.
pub const PROXY_FULL_POLICY: &str = r#"
function when()
    if mds[whoami + 1] == nil then return false end
    return whoami == 1 and state.done == nil and mds[whoami]["load"] > 0
end

function balance()
    mode = "proxy"
    targets[whoami + 1] = mds[whoami]["load"]
    state.done = 1
end
"#;

/// "Client Mode (Half)": redirecting variant of the half-migration.
pub const CLIENT_HALF_POLICY: &str = r#"
function when()
    if mds[whoami + 1] == nil then return false end
    return whoami == 1 and state.done == nil and mds[whoami]["load"] > 0
end

function balance()
    mode = "client"
    targets[whoami + 1] = mds[whoami]["load"] / 2
    state.done = 1
end
"#;

/// "Client Mode (Full)": redirecting variant of the full migration.
pub const CLIENT_FULL_POLICY: &str = r#"
function when()
    if mds[whoami + 1] == nil then return false end
    return whoami == 1 and state.done == nil and mds[whoami]["load"] > 0
end

function balance()
    mode = "client"
    targets[whoami + 1] = mds[whoami]["load"]
    state.done = 1
end
"#;

/// §6.2.3 backoff: act only after `threshold` consecutive overloaded
/// ticks, and hold off `cooldown` ticks after each migration (the
/// "countdown after a migration" built on Mantle's saved state).
pub fn backoff_policy(threshold: u32, cooldown: u32) -> String {
    format!(
        r#"
function when()
    if state.overloaded == nil then state.overloaded = 0 end
    if state.cooldown == nil then state.cooldown = 0 end
    if state.cooldown > 0 then
        state.cooldown = state.cooldown - 1
        return false
    end
    if mds[whoami]["load"] > avg * 1.1 then
        state.overloaded = state.overloaded + 1
    else
        state.overloaded = 0
    end
    return state.overloaded >= {threshold}
end

function balance()
    local best = nil
    local i = 1
    while mds[i] ~= nil do
        if i ~= whoami then
            if best == nil or mds[i]["load"] < mds[best]["load"] then
                best = i
            end
        end
        i = i + 1
    end
    if best ~= nil then
        mode = "proxy"
        targets[best] = (mds[whoami]["load"] - avg) / 2
        state.overloaded = 0
        state.cooldown = {cooldown}
    end
end
"#
    )
}

/// The monitor update pointing the cluster at a new policy object
/// (the §5.1.1 version pointer). The policy source itself must already be
/// durable in RADOS under `object_name`.
pub fn policy_pointer_update(object_name: &str) -> MapUpdate {
    MapUpdate::set(
        SERVICE_MAP_MANTLE,
        MANTLE_POLICY_KEY,
        object_name.as_bytes().to_vec(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mala_dsl::Script;

    #[test]
    fn all_stock_policies_compile() {
        for (name, src) in [
            ("greedy", GREEDY_SPREAD_POLICY),
            ("seq-aware", SEQUENCER_AWARE_POLICY),
            ("proxy-half", PROXY_HALF_POLICY),
            ("proxy-full", PROXY_FULL_POLICY),
            ("client-half", CLIENT_HALF_POLICY),
            ("client-full", CLIENT_FULL_POLICY),
        ] {
            Script::compile(src).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
        Script::compile(&backoff_policy(3, 5)).unwrap();
    }

    #[test]
    fn pointer_update_targets_mantle_map() {
        let up = policy_pointer_update("mantle_policy_v7");
        assert_eq!(up.map, SERVICE_MAP_MANTLE);
        assert_eq!(up.key, MANTLE_POLICY_KEY);
        assert_eq!(up.value.unwrap(), b"mantle_policy_v7".to_vec());
    }
}
