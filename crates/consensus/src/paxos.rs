//! A pure multi-decree Paxos state machine.
//!
//! Each replica plays all three roles (proposer, acceptor, learner). The
//! implementation is *sans-I/O*: [`PaxosNode::on_message`],
//! [`PaxosNode::heartbeat`], and friends consume inputs and return the
//! messages to send,
//! so the core can be unit- and property-tested without a network, then
//! embedded in the simulated monitor daemon.
//!
//! Leadership: the replica with the lowest id among those it believes alive
//! campaigns with a [`Ballot`] ordered by `(round, id)`. Followers forward
//! client commands to the leader; a leader that stops heartbeating is
//! superseded by a higher round.

use std::collections::{BTreeMap, HashMap, HashSet};

/// Identifies a Paxos replica within its quorum (dense, `0..n`).
pub type ReplicaId = u32;

/// A log position.
pub type Slot = u64;

/// A proposal number, totally ordered by `(round, proposer)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ballot {
    /// Monotonically increasing round.
    pub round: u64,
    /// Proposer id, breaking ties between rounds.
    pub proposer: ReplicaId,
}

impl Ballot {
    /// The null ballot, lower than every real ballot.
    pub const ZERO: Ballot = Ballot {
        round: 0,
        proposer: 0,
    };
}

/// Messages exchanged between replicas. `C` is the replicated command type.
#[derive(Debug, Clone, PartialEq)]
pub enum PaxosMsg<C> {
    /// Phase 1a: a candidate leader solicits promises.
    Prepare { ballot: Ballot },
    /// Phase 1b: promise not to accept lower ballots; carries every
    /// previously accepted `(slot, ballot, command)` at or above
    /// `first_unchosen`.
    Promise {
        ballot: Ballot,
        accepted: Vec<(Slot, Ballot, C)>,
        first_unchosen: Slot,
    },
    /// Phase 2a: the leader asks acceptors to accept `command` at `slot`.
    Accept {
        ballot: Ballot,
        slot: Slot,
        command: C,
    },
    /// Phase 2b: an acceptor accepted the proposal.
    Accepted { ballot: Ballot, slot: Slot },
    /// Phase 3 (learner shortcut): the value for `slot` is chosen.
    Chosen { slot: Slot, command: C },
    /// Rejection of a `Prepare` or `Accept` carrying the higher promised
    /// ballot, so the stale proposer can catch up its round.
    Nack { promised: Ballot },
    /// A non-leader forwards a client command to the current leader.
    Forward { command: C },
    /// Leader heartbeat; also carries the chosen-watermark so lagging
    /// replicas can request catch-up.
    Heartbeat { ballot: Ballot, chosen_up_to: Slot },
    /// A lagging replica asks a peer for chosen values starting at `from`.
    CatchupRequest { from: Slot },
    /// Catch-up reply with a range of chosen values.
    CatchupReply { chosen: Vec<(Slot, C)> },
}

/// An outbound message: destination replica and payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Outbound<C> {
    /// Destination replica.
    pub to: ReplicaId,
    /// Payload.
    pub msg: PaxosMsg<C>,
}

/// Role-specific proposer state while campaigning or leading.
#[derive(Debug, Clone)]
enum ProposerState<C> {
    /// Not the leader.
    Follower,
    /// Sent `Prepare`, collecting promises.
    Campaigning {
        promises: HashSet<ReplicaId>,
        /// Highest-ballot accepted value seen per slot, re-proposed on
        /// winning (the Paxos "choose the value of the highest-numbered
        /// proposal" rule).
        salvage: HashMap<Slot, (Ballot, C)>,
        /// Highest chosen watermark reported by any promiser; new
        /// proposals must start at or above it.
        peers_chosen: Slot,
    },
    /// Phase 1 complete for the current ballot; may propose directly.
    Leading,
}

/// Multi-decree Paxos replica.
///
/// Generic over the command type `C`; the monitor instantiates it with a
/// batch of map updates.
#[derive(Debug, Clone)]
pub struct PaxosNode<C> {
    id: ReplicaId,
    n: u32,
    /// Highest ballot promised (phase 1) — never accept below this.
    promised: Ballot,
    /// Ballot this node campaigns/leads with.
    my_ballot: Ballot,
    /// Per-slot accepted (ballot, command).
    accepted: HashMap<Slot, (Ballot, C)>,
    /// Chosen commands (the replicated log).
    chosen: BTreeMap<Slot, C>,
    /// Lowest slot with no chosen command (contiguous prefix watermark).
    first_unchosen: Slot,
    /// Next slot the leader will assign.
    next_slot: Slot,
    /// Quorum tallies for in-flight proposals led by this node.
    tallies: HashMap<Slot, HashSet<ReplicaId>>,
    /// Commands in flight at this leader, for re-proposal bookkeeping.
    in_flight: HashMap<Slot, C>,
    /// Commands waiting for leadership/phase 1.
    pending: Vec<C>,
    proposer: ProposerState<C>,
    /// Who this node believes is leader (by last heartbeat/prepare seen).
    leader_hint: Option<ReplicaId>,
}

impl<C: Clone> PaxosNode<C> {
    /// Creates replica `id` of a quorum of `n`.
    ///
    /// # Panics
    ///
    /// Panics if `id >= n` or `n == 0`.
    pub fn new(id: ReplicaId, n: u32) -> PaxosNode<C> {
        assert!(n > 0 && id < n, "replica id {id} out of range for n={n}");
        PaxosNode {
            id,
            n,
            promised: Ballot::ZERO,
            my_ballot: Ballot {
                round: 1,
                proposer: id,
            },
            accepted: HashMap::new(),
            chosen: BTreeMap::new(),
            first_unchosen: 0,
            next_slot: 0,
            tallies: HashMap::new(),
            in_flight: HashMap::new(),
            pending: Vec::new(),
            proposer: ProposerState::Follower,
            leader_hint: None,
        }
    }

    /// This replica's id.
    pub fn id(&self) -> ReplicaId {
        self.id
    }

    /// Quorum size (majority).
    fn quorum(&self) -> usize {
        (self.n as usize / 2) + 1
    }

    /// Whether this node currently leads its ballot.
    pub fn is_leader(&self) -> bool {
        matches!(self.proposer, ProposerState::Leading)
    }

    /// The ballot this node campaigns or leads with. Safety check for
    /// harnesses: two replicas may transiently both claim leadership, but
    /// never with the same ballot.
    pub fn ballot(&self) -> Ballot {
        self.my_ballot
    }

    /// The replica this node believes is leader, if any.
    pub fn leader_hint(&self) -> Option<ReplicaId> {
        if self.is_leader() {
            Some(self.id)
        } else {
            self.leader_hint
        }
    }

    /// Chosen commands in slot order starting at `from`.
    pub fn chosen_from(&self, from: Slot) -> impl Iterator<Item = (Slot, &C)> {
        self.chosen.range(from..).map(|(s, c)| (*s, c))
    }

    /// The contiguous chosen watermark: every slot below is decided.
    pub fn first_unchosen(&self) -> Slot {
        self.first_unchosen
    }

    /// Starts (or restarts) a leadership campaign with a round higher than
    /// any ballot seen. Returns `Prepare` broadcasts.
    pub fn campaign(&mut self) -> Vec<Outbound<C>> {
        let round = self.promised.round.max(self.my_ballot.round) + 1;
        self.my_ballot = Ballot {
            round,
            proposer: self.id,
        };
        self.proposer = ProposerState::Campaigning {
            promises: HashSet::new(),
            salvage: HashMap::new(),
            peers_chosen: 0,
        };
        self.broadcast(PaxosMsg::Prepare {
            ballot: self.my_ballot,
        })
    }

    /// Submits a client command. If leading, returns `Accept` broadcasts;
    /// if following with a known leader, forwards; otherwise queues it
    /// (drained on the next leadership transition).
    pub fn submit(&mut self, command: C) -> Vec<Outbound<C>> {
        match &self.proposer {
            ProposerState::Leading => self.propose_now(command),
            _ => match self.leader_hint {
                Some(leader) if leader != self.id => {
                    vec![Outbound {
                        to: leader,
                        msg: PaxosMsg::Forward { command },
                    }]
                }
                _ => {
                    self.pending.push(command);
                    Vec::new()
                }
            },
        }
    }

    /// Leader heartbeat; callers invoke this periodically. Non-leaders
    /// return nothing. Besides the liveness beacon, the leader retransmits
    /// any in-flight `Accept`s — their originals may have been lost to a
    /// partition, and nothing else would ever resend them.
    pub fn heartbeat(&mut self) -> Vec<Outbound<C>> {
        if !self.is_leader() {
            return Vec::new();
        }
        let mut out = self.broadcast(PaxosMsg::Heartbeat {
            ballot: self.my_ballot,
            chosen_up_to: self.first_unchosen,
        });
        let mut inflight: Vec<(Slot, C)> = self
            .in_flight
            .iter()
            .map(|(s, c)| (*s, c.clone()))
            .collect();
        inflight.sort_by_key(|(s, _)| *s);
        for (slot, command) in inflight {
            out.extend(self.broadcast(PaxosMsg::Accept {
                ballot: self.my_ballot,
                slot,
                command,
            }));
        }
        out
    }

    fn propose_now(&mut self, command: C) -> Vec<Outbound<C>> {
        let slot = self.next_slot;
        self.next_slot += 1;
        self.in_flight.insert(slot, command.clone());
        self.tallies.insert(slot, HashSet::new());
        self.broadcast(PaxosMsg::Accept {
            ballot: self.my_ballot,
            slot,
            command,
        })
    }

    fn broadcast(&self, msg: PaxosMsg<C>) -> Vec<Outbound<C>> {
        (0..self.n)
            .map(|to| Outbound {
                to,
                msg: msg.clone(),
            })
            .collect()
    }

    /// Handles a message from `from`, returning outbound messages.
    pub fn on_message(&mut self, from: ReplicaId, msg: PaxosMsg<C>) -> Vec<Outbound<C>> {
        match msg {
            PaxosMsg::Prepare { ballot } => self.on_prepare(from, ballot),
            PaxosMsg::Promise {
                ballot,
                accepted,
                first_unchosen,
            } => self.on_promise(from, ballot, accepted, first_unchosen),
            PaxosMsg::Accept {
                ballot,
                slot,
                command,
            } => self.on_accept(from, ballot, slot, command),
            PaxosMsg::Accepted { ballot, slot } => self.on_accepted(from, ballot, slot),
            PaxosMsg::Chosen { slot, command } => {
                self.learn(slot, command);
                Vec::new()
            }
            PaxosMsg::Nack { promised } => self.on_nack(promised),
            // A forwarded command is never re-forwarded: two non-leaders
            // with crossed leader hints would bounce it forever. A
            // non-leader queues it for its next leadership (or until the
            // real leader salvages it via phase 1).
            PaxosMsg::Forward { command } => {
                if self.is_leader() {
                    self.propose_now(command)
                } else {
                    self.pending.push(command);
                    Vec::new()
                }
            }
            PaxosMsg::Heartbeat {
                ballot,
                chosen_up_to,
            } => self.on_heartbeat(from, ballot, chosen_up_to),
            PaxosMsg::CatchupRequest { from: slot } => {
                let chosen: Vec<(Slot, C)> = self
                    .chosen
                    .range(slot..)
                    .map(|(s, c)| (*s, c.clone()))
                    .collect();
                vec![Outbound {
                    to: from,
                    msg: PaxosMsg::CatchupReply { chosen },
                }]
            }
            PaxosMsg::CatchupReply { chosen } => {
                for (slot, cmd) in chosen {
                    self.learn(slot, cmd);
                }
                Vec::new()
            }
        }
    }

    fn on_prepare(&mut self, from: ReplicaId, ballot: Ballot) -> Vec<Outbound<C>> {
        if ballot < self.promised {
            return vec![Outbound {
                to: from,
                msg: PaxosMsg::Nack {
                    promised: self.promised,
                },
            }];
        }
        self.promised = ballot;
        self.leader_hint = Some(from);
        if from != self.id {
            // A higher ballot supersedes any local leadership.
            self.step_down();
        }
        // The promise must carry the FULL accepted history: a slot this
        // node already chose (and moved its watermark past) may be unknown
        // to the candidate, and omitting it would let the candidate reuse
        // the slot for a different command — an agreement violation.
        let accepted: Vec<(Slot, Ballot, C)> = self
            .accepted
            .iter()
            .map(|(s, (b, c))| (*s, *b, c.clone()))
            .collect();
        vec![Outbound {
            to: from,
            msg: PaxosMsg::Promise {
                ballot,
                accepted,
                first_unchosen: self.first_unchosen,
            },
        }]
    }

    fn step_down(&mut self) {
        if !matches!(self.proposer, ProposerState::Follower) {
            self.proposer = ProposerState::Follower;
        }
        self.tallies.clear();
        // Commands this node had in flight are re-queued so they are not
        // lost (the new leader may also have salvaged them; the monitor's
        // command application is idempotent per transaction id).
        let mut orphans: Vec<(Slot, C)> = self.in_flight.drain().collect();
        orphans.sort_by_key(|(s, _)| *s);
        for (slot, cmd) in orphans {
            if !self.chosen.contains_key(&slot) {
                self.pending.push(cmd);
            }
        }
    }

    fn on_promise(
        &mut self,
        from: ReplicaId,
        ballot: Ballot,
        accepted: Vec<(Slot, Ballot, C)>,
        first_unchosen: Slot,
    ) -> Vec<Outbound<C>> {
        let quorum = self.quorum();
        let my_ballot = self.my_ballot;
        let ProposerState::Campaigning {
            promises,
            salvage,
            peers_chosen,
        } = &mut self.proposer
        else {
            return Vec::new();
        };
        if ballot != my_ballot {
            return Vec::new();
        }
        promises.insert(from);
        *peers_chosen = (*peers_chosen).max(first_unchosen);
        for (slot, b, cmd) in accepted {
            match salvage.get(&slot) {
                Some((existing, _)) if *existing >= b => {}
                _ => {
                    salvage.insert(slot, (b, cmd));
                }
            }
        }
        if promises.len() < quorum {
            return Vec::new();
        }
        // Phase 1 complete: become leader. Re-propose every salvaged value
        // at its slot — for an already-chosen slot this re-proposes the
        // chosen value, which is safe — then drain pending commands into
        // fresh slots strictly above everything any promiser has chosen.
        let peers_chosen = *peers_chosen;
        let mut salvage: Vec<(Slot, C)> = std::mem::take(salvage)
            .into_iter()
            .map(|(slot, (_, cmd))| (slot, cmd))
            .collect();
        salvage.sort_by_key(|(slot, _)| *slot);
        self.proposer = ProposerState::Leading;
        let mut out = Vec::new();
        for (slot, cmd) in salvage {
            self.next_slot = self.next_slot.max(slot + 1);
            if self.chosen.contains_key(&slot) {
                continue;
            }
            self.in_flight.insert(slot, cmd.clone());
            self.tallies.insert(slot, HashSet::new());
            out.extend(self.broadcast(PaxosMsg::Accept {
                ballot: self.my_ballot,
                slot,
                command: cmd,
            }));
        }
        self.next_slot = self.next_slot.max(self.first_unchosen).max(peers_chosen);
        for cmd in std::mem::take(&mut self.pending) {
            out.extend(self.propose_now(cmd));
        }
        out
    }

    fn on_accept(
        &mut self,
        from: ReplicaId,
        ballot: Ballot,
        slot: Slot,
        command: C,
    ) -> Vec<Outbound<C>> {
        if ballot < self.promised {
            return vec![Outbound {
                to: from,
                msg: PaxosMsg::Nack {
                    promised: self.promised,
                },
            }];
        }
        self.promised = ballot;
        self.leader_hint = Some(ballot.proposer);
        if ballot.proposer != self.id {
            self.step_down();
        }
        self.accepted.insert(slot, (ballot, command));
        vec![Outbound {
            to: from,
            msg: PaxosMsg::Accepted { ballot, slot },
        }]
    }

    fn on_accepted(&mut self, from: ReplicaId, ballot: Ballot, slot: Slot) -> Vec<Outbound<C>> {
        if ballot != self.my_ballot || !self.is_leader() {
            return Vec::new();
        }
        let Some(tally) = self.tallies.get_mut(&slot) else {
            return Vec::new();
        };
        tally.insert(from);
        if tally.len() < self.quorum() {
            return Vec::new();
        }
        self.tallies.remove(&slot);
        let Some(command) = self.in_flight.remove(&slot) else {
            return Vec::new();
        };
        self.learn(slot, command.clone());
        self.broadcast(PaxosMsg::Chosen { slot, command })
    }

    fn on_nack(&mut self, promised: Ballot) -> Vec<Outbound<C>> {
        if promised > self.my_ballot && !matches!(self.proposer, ProposerState::Follower) {
            // Someone holds a higher ballot: step down. The caller's
            // election timeout decides whether to campaign again.
            self.step_down();
            self.my_ballot.round = promised.round;
        }
        Vec::new()
    }

    fn on_heartbeat(
        &mut self,
        from: ReplicaId,
        ballot: Ballot,
        chosen_up_to: Slot,
    ) -> Vec<Outbound<C>> {
        if ballot < self.promised {
            return Vec::new();
        }
        self.promised = self.promised.max(ballot);
        self.leader_hint = Some(from);
        if from != self.id && !matches!(self.proposer, ProposerState::Follower) {
            self.step_down();
        }
        let mut out = Vec::new();
        // A follower with queued commands (accepted while leaderless, or
        // re-queued after stepping down) hands them to the leader now.
        if from != self.id {
            for command in std::mem::take(&mut self.pending) {
                out.push(Outbound {
                    to: from,
                    msg: PaxosMsg::Forward { command },
                });
            }
        }
        if chosen_up_to > self.first_unchosen {
            out.push(Outbound {
                to: from,
                msg: PaxosMsg::CatchupRequest {
                    from: self.first_unchosen,
                },
            });
        }
        out
    }

    fn learn(&mut self, slot: Slot, command: C) {
        self.chosen.entry(slot).or_insert(command);
        while self.chosen.contains_key(&self.first_unchosen) {
            self.first_unchosen += 1;
        }
        if self.next_slot < self.first_unchosen {
            self.next_slot = self.first_unchosen;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Node = PaxosNode<u64>;

    /// Delivers all outbound messages until quiescence, dropping any
    /// message for which `drop` returns true. Returns the number delivered.
    fn pump_filtered(
        nodes: &mut [Node],
        mut initial: Vec<(ReplicaId, Outbound<u64>)>,
        drop: impl Fn(ReplicaId, &Outbound<u64>) -> bool,
    ) -> usize {
        let mut delivered = 0;
        while let Some((from, out)) = initial.pop() {
            if drop(from, &out) {
                continue;
            }
            delivered += 1;
            let replies = nodes[out.to as usize].on_message(from, out.msg);
            let to = out.to;
            initial.extend(replies.into_iter().map(|r| (to, r)));
        }
        delivered
    }

    /// Delivers all outbound messages until quiescence.
    fn pump(nodes: &mut [Node], initial: Vec<(ReplicaId, Outbound<u64>)>) -> usize {
        pump_filtered(nodes, initial, |_, _| false)
    }

    fn cluster(n: u32) -> Vec<Node> {
        (0..n).map(|i| Node::new(i, n)).collect()
    }

    fn tag(from: ReplicaId, out: Vec<Outbound<u64>>) -> Vec<(ReplicaId, Outbound<u64>)> {
        out.into_iter().map(|o| (from, o)).collect()
    }

    #[test]
    fn single_leader_commits_commands_in_order() {
        let mut nodes = cluster(3);
        let out = nodes[0].campaign();
        pump(&mut nodes, tag(0, out));
        assert!(nodes[0].is_leader());

        for cmd in [10u64, 20, 30] {
            let out = nodes[0].submit(cmd);
            pump(&mut nodes, tag(0, out));
        }
        for node in &nodes {
            let log: Vec<u64> = node.chosen_from(0).map(|(_, c)| *c).collect();
            assert_eq!(log, vec![10, 20, 30]);
            assert_eq!(node.first_unchosen(), 3);
        }
    }

    #[test]
    fn followers_forward_to_leader() {
        let mut nodes = cluster(3);
        let out = nodes[0].campaign();
        pump(&mut nodes, tag(0, out));
        // Node 2 learned the leader from the Prepare.
        let out = nodes[2].submit(99);
        pump(&mut nodes, tag(2, out));
        assert_eq!(nodes[1].chosen_from(0).count(), 1);
    }

    #[test]
    fn higher_ballot_supersedes_leader() {
        let mut nodes = cluster(3);
        let out = nodes[0].campaign();
        pump(&mut nodes, tag(0, out));
        let out = nodes[1].campaign();
        pump(&mut nodes, tag(1, out));
        assert!(!nodes[0].is_leader());
        assert!(nodes[1].is_leader());
    }

    #[test]
    fn new_leader_salvages_accepted_values() {
        let mut nodes = cluster(3);
        let out = nodes[0].campaign();
        pump(&mut nodes, tag(0, out));
        // Leader proposes but Accepted replies are lost: value accepted at
        // a quorum of acceptors yet never chosen.
        let accepts = nodes[0].submit(7);
        for o in accepts {
            nodes[o.to as usize].on_message(0, o.msg); // drop replies
        }
        assert_eq!(nodes[2].chosen_from(0).count(), 0);
        // Node 1 campaigns and must salvage command 7 into slot 0.
        let out = nodes[1].campaign();
        pump(&mut nodes, tag(1, out));
        let log: Vec<u64> = nodes[2].chosen_from(0).map(|(_, c)| *c).collect();
        assert_eq!(log, vec![7]);
    }

    #[test]
    fn nack_makes_stale_proposer_step_down() {
        let mut nodes = cluster(3);
        let out = nodes[1].campaign();
        pump(&mut nodes, tag(1, out));
        // Node 0 campaigns with a stale view; its ballot round (2, 0) is
        // below (2, 1)? No: rounds tie at 2 but proposer 0 < 1, so node 0's
        // prepare is rejected by promised (2,1) holders... unless it wins.
        // Either way the protocol must keep a single leader.
        let out = nodes[0].campaign();
        pump(&mut nodes, tag(0, out));
        let leaders = nodes.iter().filter(|n| n.is_leader()).count();
        assert_eq!(leaders, 1);
    }

    #[test]
    fn pending_commands_drain_after_election() {
        let mut nodes = cluster(3);
        // Submit before any leader exists: queued locally.
        assert!(nodes[0].submit(5).is_empty());
        let out = nodes[0].campaign();
        pump(&mut nodes, tag(0, out));
        let log: Vec<u64> = nodes[1].chosen_from(0).map(|(_, c)| *c).collect();
        assert_eq!(log, vec![5]);
    }

    #[test]
    fn heartbeat_triggers_catchup() {
        let mut nodes = cluster(3);
        let out = nodes[0].campaign();
        pump(&mut nodes, tag(0, out));
        // Commit a command but drop everything to node 2.
        let out = nodes[0].submit(8);
        pump_filtered(&mut nodes, tag(0, out), |_, o| o.to == 2);
        assert_eq!(nodes[2].chosen_from(0).count(), 0);
        // Heartbeat reveals the gap; catch-up fills it.
        let hb = nodes[0].heartbeat();
        pump(&mut nodes, tag(0, hb));
        assert_eq!(nodes[2].chosen_from(0).count(), 1);
    }

    #[test]
    fn five_node_quorum_tolerates_two_silent() {
        let mut nodes = cluster(5);
        let out = nodes[0].campaign();
        // Drop everything to nodes 3 and 4.
        pump_filtered(&mut nodes, tag(0, out), |_, o| o.to >= 3);
        assert!(nodes[0].is_leader());
        let out = nodes[0].submit(1);
        pump_filtered(&mut nodes, tag(0, out), |_, o| o.to >= 3);
        assert_eq!(nodes[1].chosen_from(0).count(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_replica_id_panics() {
        Node::new(3, 3);
    }
}
