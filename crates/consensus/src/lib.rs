//! Consensus substrate: multi-decree Paxos and the monitor service.
//!
//! Ceph's monitors maintain authoritative, versioned *cluster maps* (OSD
//! map, MDS map, ...) behind a Paxos quorum; Malacology's Service Metadata
//! interface (paper §4.1) exposes that machinery as a strongly-consistent
//! key-value service for time-varying service metadata — balancer versions,
//! installed object interfaces, sequencer placements.
//!
//! This crate reproduces both layers:
//!
//! * [`paxos`] — a pure (sans-I/O) multi-decree Paxos state machine, unit-
//!   and property-tested in isolation (agreement under message loss,
//!   reordering, and competing proposers).
//! * [`monitor`] — the monitor daemon actor: batches client updates into
//!   proposals on a configurable *accumulation interval* (1 s in stock
//!   Ceph; the paper lowers it to ~222 ms on a 3-monitor quorum), applies
//!   chosen batches to versioned maps, and notifies subscribers.
//!
//! The proposal interval is the experimental knob behind the paper's
//! Figure 8 (interface-propagation latency).
// Recovery and ingress paths must degrade, not abort: turn every stray
// panic site into a handled error. Test code is exempt.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod monitor;
pub mod paxos;

pub use monitor::{
    MapSnapshot, MapUpdate, MonConfig, MonMsg, Monitor, SERVICE_MAP_INTERFACES, SERVICE_MAP_MANTLE,
    SERVICE_MAP_MDS, SERVICE_MAP_OSD,
};
pub use paxos::{Ballot, PaxosMsg, PaxosNode, ReplicaId, Slot};
