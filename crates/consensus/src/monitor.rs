//! The monitor daemon: versioned cluster maps behind a Paxos quorum.
//!
//! Monitors reproduce the behaviour the paper relies on (§4.1):
//!
//! * Clients submit key-value updates to named *cluster maps* (the OSD map,
//!   MDS map, interface registry, Mantle policy pointer ...).
//! * Updates accumulate and are proposed as one Paxos command per
//!   *proposal interval* (1 s in stock Ceph; the paper reports lowering it
//!   to ~222 ms on a 3-monitor hard-drive quorum).
//! * Every committed batch bumps the *epoch* of each touched map, and
//!   subscribers receive change notifications — the seed of the OSD gossip
//!   that Figure 8 measures.

use std::any::Any;
use std::collections::{BTreeMap, HashMap, HashSet};

use mala_sim::{Actor, Context, NodeId, SimDuration, SimTime, SpanContext};

use crate::paxos::{Outbound, PaxosMsg, PaxosNode, ReplicaId, Slot};

/// Name of the OSD cluster map.
pub const SERVICE_MAP_OSD: &str = "osdmap";
/// Name of the MDS cluster map.
pub const SERVICE_MAP_MDS: &str = "mdsmap";
/// Name of the dynamic object-interface registry map.
pub const SERVICE_MAP_INTERFACES: &str = "interfaces";
/// Name of the Mantle balancer-policy map.
pub const SERVICE_MAP_MANTLE: &str = "mantle";

/// One key-value mutation against a named map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapUpdate {
    /// Target map name (e.g. [`SERVICE_MAP_INTERFACES`]).
    pub map: String,
    /// Key within the map.
    pub key: String,
    /// New value, or `None` to delete the key.
    pub value: Option<Vec<u8>>,
}

impl MapUpdate {
    /// Convenience constructor for a set.
    pub fn set(map: &str, key: &str, value: impl Into<Vec<u8>>) -> MapUpdate {
        MapUpdate {
            map: map.to_string(),
            key: key.to_string(),
            value: Some(value.into()),
        }
    }

    /// Convenience constructor for a delete.
    pub fn del(map: &str, key: &str) -> MapUpdate {
        MapUpdate {
            map: map.to_string(),
            key: key.to_string(),
            value: None,
        }
    }
}

/// A read-only copy of one versioned map.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MapSnapshot {
    /// Map name.
    pub map: String,
    /// Version; bumped once per committed batch touching the map.
    pub epoch: u64,
    /// Full contents.
    pub entries: BTreeMap<String, Vec<u8>>,
}

/// The Paxos command type: one batch of updates accumulated during a
/// proposal interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxBatch {
    /// Dedup key: (submitting client node, client-chosen sequence).
    pub txids: Vec<(NodeId, u64)>,
    /// Clients to acknowledge, parallel to `txids`.
    pub clients: Vec<NodeId>,
    /// The monitor rank that owns sending the acknowledgements.
    pub origin: ReplicaId,
    /// The concatenated updates of the batch.
    pub updates: Vec<MapUpdate>,
}

/// Client-facing monitor protocol.
#[derive(Debug, Clone)]
pub enum MonMsg {
    /// Submit updates; `seq` must be unique per client node.
    Submit {
        /// Client-chosen sequence number for dedup and ack matching.
        seq: u64,
        /// The mutations.
        updates: Vec<MapUpdate>,
    },
    /// Acknowledgement that the batch containing `seq` committed.
    SubmitAck {
        /// Echoed client sequence.
        seq: u64,
        /// Epoch of each touched map after application.
        epochs: Vec<(String, u64)>,
    },
    /// Read a map.
    Get {
        /// Map name.
        map: String,
    },
    /// Reply to [`MonMsg::Get`], also sent on subscribe.
    Snapshot(MapSnapshot),
    /// Subscribe to change notifications for a map.
    Subscribe {
        /// Map name.
        map: String,
    },
    /// Pushed to subscribers after a committed batch touches the map.
    Changed {
        /// Map name.
        map: String,
        /// New epoch.
        epoch: u64,
        /// The changed keys and their new values (`None` = deleted).
        delta: Vec<(String, Option<Vec<u8>>)>,
    },
    /// A daemon reports an important event to the central cluster log
    /// (Mantle's §5.1.3: errors and warnings go to the monitor, not to
    /// per-node files).
    ClusterLog {
        /// Reporting daemon (e.g. `mds.1`).
        source: String,
        /// The message.
        line: String,
    },
    /// Periodic MDS liveness beacon. Active ranks send `Some(rank)`;
    /// standby daemons send `None`, which doubles as standby registration:
    /// the leader commits a `standby.<node>` entry into the MDS map so a
    /// later failover can promote the node into a vacant rank.
    MdsBeacon {
        /// The rank the sender currently serves, or `None` for a standby.
        rank: Option<u32>,
    },
}

/// Peer-to-peer wrapper so the sim can route Paxos traffic.
#[derive(Debug, Clone)]
pub struct MonWire(pub PaxosMsg<TxBatch>);

/// Monitor configuration.
#[derive(Debug, Clone)]
pub struct MonConfig {
    /// How long updates accumulate before being proposed (Ceph default 1 s;
    /// the paper's tuned quorum reaches ~222 ms).
    pub proposal_interval: SimDuration,
    /// Leader heartbeat period.
    pub heartbeat_interval: SimDuration,
    /// Follower patience before campaigning.
    pub election_timeout: SimDuration,
    /// How long an MDS may go without beaconing before the leader marks
    /// its rank down and promotes a standby.
    pub mds_beacon_grace: SimDuration,
}

impl Default for MonConfig {
    fn default() -> Self {
        MonConfig {
            proposal_interval: SimDuration::from_secs(1),
            heartbeat_interval: SimDuration::from_millis(250),
            election_timeout: SimDuration::from_millis(1500),
            mds_beacon_grace: SimDuration::from_millis(1000),
        }
    }
}

/// One key's change within a committed batch: `(key, new value | deleted)`.
type MapDelta = (String, Option<Vec<u8>>);

const TIMER_PROPOSAL: u64 = 1;
const TIMER_HEARTBEAT: u64 = 2;
const TIMER_ELECTION: u64 = 3;
const TIMER_MDS_LIVENESS: u64 = 4;

/// Seq namespace for transactions the leader originates itself (MDS
/// liveness actions); keeps their txids clear of harness-injected seqs,
/// which share the monitor's own NodeId as submitter.
const SELF_SEQ_BASE: u64 = 1 << 32;

/// The monitor daemon actor.
pub struct Monitor {
    config: MonConfig,
    /// NodeIds of all monitors, indexed by Paxos rank.
    peers: Vec<NodeId>,
    rank: ReplicaId,
    paxos: PaxosNode<TxBatch>,
    /// Versioned maps (the replicated state machine).
    maps: BTreeMap<String, MapSnapshot>,
    /// Next chosen slot to apply.
    applied: Slot,
    /// Dedup of applied transactions.
    applied_txids: HashSet<(NodeId, u64)>,
    /// Updates accumulated since the last proposal tick.
    pending: Vec<(NodeId, u64, Vec<MapUpdate>)>,
    /// Per-map subscribers.
    subs: HashMap<String, HashSet<NodeId>>,
    /// Last time we heard from a leader (heartbeat or prepare).
    last_leader_contact: SimTime,
    /// The central cluster log: `(when, source, line)`.
    cluster_log: Vec<(SimTime, String, String)>,
    /// Last beacon received per MDS node. Only nodes that have beaconed at
    /// least once are subject to liveness reaping, so harnesses that build
    /// synthetic MDS maps without live daemons are left alone.
    mds_beacons: HashMap<NodeId, SimTime>,
    /// Per-mdsmap-key proposal debounce: when the reaper last proposed a
    /// change for this key (avoids re-proposing while a commit is in
    /// flight).
    mds_proposed: HashMap<String, SimTime>,
    /// Next self-originated seq (see [`SELF_SEQ_BASE`]).
    self_seq: u64,
    /// `mon.propose` spans for batches this monitor proposed, keyed by the
    /// batch's first txid; closed when the batch commits locally.
    propose_spans: HashMap<(NodeId, u64), SpanContext>,
}

impl Monitor {
    /// Creates monitor `rank` of the quorum whose members live at `peers`
    /// (indexed by rank).
    pub fn new(rank: ReplicaId, peers: Vec<NodeId>, config: MonConfig) -> Monitor {
        let n = peers.len() as u32;
        Monitor {
            config,
            peers,
            rank,
            paxos: PaxosNode::new(rank, n),
            maps: BTreeMap::new(),
            applied: 0,
            applied_txids: HashSet::new(),
            pending: Vec::new(),
            subs: HashMap::new(),
            last_leader_contact: SimTime::ZERO,
            cluster_log: Vec::new(),
            mds_beacons: HashMap::new(),
            mds_proposed: HashMap::new(),
            self_seq: SELF_SEQ_BASE,
            propose_spans: HashMap::new(),
        }
    }

    /// The central cluster log collected from daemons.
    pub fn cluster_log(&self) -> &[(SimTime, String, String)] {
        &self.cluster_log
    }

    /// Read-only view of a map (local replica state).
    pub fn map(&self, name: &str) -> Option<&MapSnapshot> {
        self.maps.get(name)
    }

    /// Whether this monitor currently leads the quorum.
    pub fn is_leader(&self) -> bool {
        self.paxos.is_leader()
    }

    /// The ballot this monitor leads with, if it currently leads. Two
    /// monitors claiming the same ballot would be a Paxos safety violation.
    pub fn leader_ballot(&self) -> Option<crate::paxos::Ballot> {
        if self.paxos.is_leader() {
            Some(self.paxos.ballot())
        } else {
            None
        }
    }

    fn ship(&self, ctx: &mut Context<'_>, out: Vec<Outbound<TxBatch>>) {
        for o in out {
            let to = self.peers[o.to as usize];
            ctx.send(to, MonWire(o.msg));
        }
    }

    fn apply_chosen(&mut self, ctx: &mut Context<'_>) {
        loop {
            let watermark = self.paxos.first_unchosen();
            if self.applied >= watermark {
                break;
            }
            let batch: Vec<TxBatch> = self
                .paxos
                .chosen_from(self.applied)
                .take_while(|(slot, _)| *slot < watermark)
                .map(|(_, c)| c.clone())
                .collect();
            let first_applied = self.applied;
            self.applied = watermark;
            for (i, tx) in batch.iter().enumerate() {
                let _slot = first_applied + i as u64;
                self.apply_batch(ctx, tx);
            }
        }
    }

    fn apply_batch(&mut self, ctx: &mut Context<'_>, tx: &TxBatch) {
        // Close the propose→commit span if this monitor proposed the batch.
        if let Some(span) = tx
            .txids
            .first()
            .and_then(|first| self.propose_spans.remove(first))
        {
            ctx.span_end(span);
        }
        // Dedup: a batch may contain transactions that were re-proposed
        // after a leader change; skip already-applied ones.
        let mut fresh_updates: Vec<&MapUpdate> = Vec::new();
        let mut fresh_txs: Vec<(NodeId, u64)> = Vec::new();
        if tx.txids.is_empty() {
            fresh_updates.extend(tx.updates.iter());
        } else {
            // Updates are grouped per txid in submission order; recover the
            // grouping from the parallel arrays.
            let per_tx = tx.updates.len() / tx.txids.len().max(1);
            for (i, txid) in tx.txids.iter().enumerate() {
                if self.applied_txids.insert(*txid) {
                    fresh_txs.push(*txid);
                    let lo = i * per_tx;
                    let hi = if i + 1 == tx.txids.len() {
                        tx.updates.len()
                    } else {
                        (i + 1) * per_tx
                    };
                    fresh_updates.extend(tx.updates[lo..hi].iter());
                }
            }
        }
        let mut touched: BTreeMap<String, Vec<MapDelta>> = BTreeMap::new();
        for up in fresh_updates {
            // Pool entries are operator-writable and parameterize
            // placement math on every daemon: validate at commit time so a
            // `pg_num=0` (or unparseable) pool can never enter the
            // authoritative map. Deterministic — every replica applies the
            // same batch and skips the same updates.
            if up.map == SERVICE_MAP_OSD
                && up.key.starts_with("pool.")
                && matches!(&up.value, Some(value) if !pool_entry_is_valid(value))
            {
                ctx.metrics().incr("mon.osdmap_rejected_updates", 1);
                continue;
            }
            let snap = self
                .maps
                .entry(up.map.clone())
                .or_insert_with(|| MapSnapshot {
                    map: up.map.clone(),
                    epoch: 0,
                    entries: BTreeMap::new(),
                });
            match &up.value {
                Some(v) => {
                    snap.entries.insert(up.key.clone(), v.clone());
                }
                None => {
                    snap.entries.remove(&up.key);
                }
            }
            touched
                .entry(up.map.clone())
                .or_default()
                .push((up.key.clone(), up.value.clone()));
        }
        let mut epochs = Vec::new();
        for (map, delta) in touched {
            let Some(snap) = self.maps.get_mut(&map) else {
                continue; // unreachable: every touched map was just inserted
            };
            snap.epoch += 1;
            epochs.push((map.clone(), snap.epoch));
            if let Some(subs) = self.subs.get(&map) {
                // Notify in node order: the set hashes by a per-process
                // seed, and send order feeds the network's latency RNG,
                // so an unsorted walk makes runs non-replayable.
                let mut subs: Vec<NodeId> = subs.iter().copied().collect();
                subs.sort_unstable();
                for sub in subs {
                    ctx.send(
                        sub,
                        MonMsg::Changed {
                            map: map.clone(),
                            epoch: snap.epoch,
                            delta: delta.clone(),
                        },
                    );
                }
            }
            ctx.metrics().incr("mon.map_commits", 1);
            let now = ctx.now();
            ctx.metrics()
                .observe(&format!("mon.commit.{map}"), now, snap.epoch as f64);
        }
        // Acknowledge clients: only the origin monitor replies, so clients
        // get exactly one ack.
        if tx.origin == self.rank {
            for (i, txid) in tx.txids.iter().enumerate() {
                if fresh_txs.contains(txid) {
                    ctx.send(
                        tx.clients[i],
                        MonMsg::SubmitAck {
                            seq: txid.1,
                            epochs: epochs.clone(),
                        },
                    );
                }
            }
        }
    }

    fn snapshot_or_empty(&self, map: &str) -> MapSnapshot {
        self.maps.get(map).cloned().unwrap_or_else(|| MapSnapshot {
            map: map.to_string(),
            epoch: 0,
            entries: BTreeMap::new(),
        })
    }

    /// Queues a self-originated transaction (MDS liveness action) for the
    /// next proposal interval. Acks come back to this monitor and are
    /// ignored.
    fn submit_self(&mut self, updates: Vec<MapUpdate>) {
        let me = self.peers[self.rank as usize];
        let seq = self.self_seq;
        self.self_seq += 1;
        self.pending.push((me, seq, updates));
    }

    /// MDS liveness reaping (leader only): ranks whose daemons have gone
    /// silent past the beacon grace are marked down with a Paxos-committed
    /// MDS-map epoch bump, and a registered standby — if one is alive — is
    /// promoted into the vacant rank.
    fn reap_mds(&mut self, ctx: &mut Context<'_>) {
        if !self.paxos.is_leader() {
            return;
        }
        let now = ctx.now();
        let grace = self.config.mds_beacon_grace;
        let fresh = |beacons: &HashMap<NodeId, SimTime>, node: NodeId| {
            beacons
                .get(&node)
                .is_some_and(|at| now.saturating_since(*at) < grace)
        };
        // Parse the committed mdsmap (same wire format as MdsMapView, which
        // lives upstack in mala-mds): `mds.<rank>` -> `node=<N>,up=<0|1>`,
        // `standby.<node>` -> registered standby daemons.
        let snap = self.snapshot_or_empty(SERVICE_MAP_MDS);
        let mut ranks: Vec<(u32, NodeId, bool)> = Vec::new();
        let mut standbys: Vec<NodeId> = Vec::new();
        for (key, value) in &snap.entries {
            if let Some(rank) = key.strip_prefix("mds.").and_then(|r| r.parse().ok()) {
                let text = String::from_utf8_lossy(value);
                let mut node = None;
                let mut up = false;
                for field in text.split(',') {
                    match field.split_once('=') {
                        Some(("node", n)) => node = n.parse().ok().map(NodeId),
                        Some(("up", u)) => up = u == "1",
                        _ => {}
                    }
                }
                if let Some(node) = node {
                    ranks.push((rank, node, up));
                }
            } else if let Some(node) = key.strip_prefix("standby.").and_then(|n| n.parse().ok()) {
                standbys.push(NodeId(node));
            }
        }
        standbys.retain(|n| fresh(&self.mds_beacons, *n));
        let mut actions: Vec<(u32, Vec<MapUpdate>, String)> = Vec::new();
        for (rank, node, up) in ranks {
            let key = format!("mds.{rank}");
            if self
                .mds_proposed
                .get(&key)
                .is_some_and(|at| now.saturating_since(*at) < grace)
            {
                continue;
            }
            let silent = self.mds_beacons.contains_key(&node) && !fresh(&self.mds_beacons, node);
            if up && !silent {
                continue;
            }
            if !up && standbys.is_empty() {
                continue;
            }
            let mut updates = Vec::new();
            let line;
            if let Some(standby) = standbys.pop() {
                updates.push(MapUpdate::set(
                    SERVICE_MAP_MDS,
                    &key,
                    format!("node={},up=1", standby.0).into_bytes(),
                ));
                updates.push(MapUpdate::del(
                    SERVICE_MAP_MDS,
                    &format!("standby.{}", standby.0),
                ));
                line = format!("mds.{rank} on {node} failed; promoting standby {standby}");
                ctx.metrics().incr("mon.mds_failovers", 1);
            } else {
                updates.push(MapUpdate::set(
                    SERVICE_MAP_MDS,
                    &key,
                    format!("node={},up=0", node.0).into_bytes(),
                ));
                line = format!("mds.{rank} on {node} missed beacons; marked down (no standby)");
                ctx.metrics().incr("mon.mds_marked_down", 1);
            }
            actions.push((rank, updates, line));
        }
        for (rank, updates, line) in actions {
            self.mds_proposed.insert(format!("mds.{rank}"), now);
            self.cluster_log
                .push((now, format!("mon.{}", self.rank), line));
            self.submit_self(updates);
        }
    }

    /// Standby registration: a beaconing standby not yet in the map gets a
    /// `standby.<node>` entry committed (leader only).
    fn register_standby(&mut self, ctx: &mut Context<'_>, node: NodeId) {
        if !self.paxos.is_leader() {
            return;
        }
        let now = ctx.now();
        let key = format!("standby.{}", node.0);
        if self
            .mds_proposed
            .get(&key)
            .is_some_and(|at| now.saturating_since(*at) < self.config.mds_beacon_grace)
        {
            return;
        }
        let snap = self.snapshot_or_empty(SERVICE_MAP_MDS);
        if snap.entries.contains_key(&key) {
            return;
        }
        // A node already holding a rank (e.g. just promoted, beacon not yet
        // switched over) must not be double-registered as a standby.
        let holds_rank = snap.entries.iter().any(|(k, v)| {
            k.starts_with("mds.")
                && String::from_utf8_lossy(v)
                    .split(',')
                    .any(|f| f == format!("node={}", node.0))
        });
        if holds_rank {
            return;
        }
        self.mds_proposed.insert(key.clone(), now);
        self.submit_self(vec![MapUpdate::set(SERVICE_MAP_MDS, &key, b"1".to_vec())]);
        ctx.metrics().incr("mon.mds_standbys_registered", 1);
    }
}

/// Commit-time validation for `pool.*` osdmap entries: the `k=v` value
/// must parse to a non-zero `pg_num` and `replicas`. A zero (or garbage)
/// in either would feed degenerate parameters into every daemon's
/// placement math; a daemon-side clamp exists as defense in depth, but the
/// authoritative map should never carry the entry at all.
fn pool_entry_is_valid(value: &[u8]) -> bool {
    let value = String::from_utf8_lossy(value);
    let mut pg_num: Option<u32> = None;
    let mut replicas: Option<u32> = None;
    for part in value.split(',') {
        match part.split_once('=') {
            Some(("pg_num", v)) => pg_num = v.parse().ok(),
            Some(("replicas", v)) => replicas = v.parse().ok(),
            _ => {}
        }
    }
    matches!((pg_num, replicas), (Some(p), Some(r)) if p > 0 && r > 0)
}

impl Actor for Monitor {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.last_leader_contact = ctx.now();
        ctx.set_timer(self.config.proposal_interval, TIMER_PROPOSAL);
        ctx.set_timer(self.config.heartbeat_interval, TIMER_HEARTBEAT);
        // Stagger election timeouts by rank so rank 0 wins the first
        // election without duels.
        let patience = self.config.election_timeout.mul(self.rank as u64 + 1);
        if self.rank == 0 {
            let out = self.paxos.campaign();
            self.ship(ctx, out);
        }
        ctx.set_timer(patience, TIMER_ELECTION);
        ctx.set_timer(self.config.mds_beacon_grace.div(2), TIMER_MDS_LIVENESS);
    }

    fn on_message(&mut self, ctx: &mut Context<'_>, from: NodeId, msg: Box<dyn Any>) {
        let msg = match msg.downcast::<MonWire>() {
            Ok(wire) => {
                // A Paxos message from a node outside the configured quorum
                // is hostile or misconfigured; participating would let a
                // rogue sender steer consensus (or, previously, crash the
                // monitor). Drop it on the floor and count it.
                let Some(rank) = self.peers.iter().position(|p| *p == from) else {
                    ctx.metrics().incr("mon.paxos_rogue_msgs", 1);
                    return;
                };
                let rank = rank as ReplicaId;
                if matches!(
                    wire.0,
                    PaxosMsg::Heartbeat { .. } | PaxosMsg::Prepare { .. }
                ) {
                    self.last_leader_contact = ctx.now();
                }
                let out = self.paxos.on_message(rank, wire.0);
                self.ship(ctx, out);
                self.apply_chosen(ctx);
                return;
            }
            Err(other) => other,
        };
        let Ok(msg) = msg.downcast::<MonMsg>() else {
            return;
        };
        match *msg {
            MonMsg::Submit { seq, updates } => {
                ctx.metrics().incr("mon.submits", 1);
                self.pending.push((from, seq, updates));
            }
            MonMsg::Get { map } => {
                let snap = self.snapshot_or_empty(&map);
                ctx.send(from, MonMsg::Snapshot(snap));
            }
            MonMsg::Subscribe { map } => {
                self.subs.entry(map.clone()).or_default().insert(from);
                let snap = self.snapshot_or_empty(&map);
                ctx.send(from, MonMsg::Snapshot(snap));
            }
            MonMsg::ClusterLog { source, line } => {
                ctx.metrics().incr("mon.cluster_log_lines", 1);
                self.cluster_log.push((ctx.now(), source, line));
            }
            MonMsg::MdsBeacon { rank } => {
                ctx.metrics().incr("mon.mds_beacons", 1);
                self.mds_beacons.insert(from, ctx.now());
                if rank.is_none() {
                    self.register_standby(ctx, from);
                }
            }
            MonMsg::SubmitAck { .. } | MonMsg::Snapshot(_) | MonMsg::Changed { .. } => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, token: u64) {
        match token {
            TIMER_PROPOSAL => {
                if !self.pending.is_empty() {
                    // Pad every transaction to the same number of updates so
                    // application can recover per-tx grouping (see
                    // `apply_batch`); in practice transactions are shipped
                    // whole, so we simply propose one batch per tx group
                    // with uniform sizes, falling back to per-tx batches.
                    let pending = std::mem::take(&mut self.pending);
                    let uniform = pending
                        .iter()
                        .map(|(_, _, u)| u.len())
                        .collect::<HashSet<_>>()
                        .len()
                        <= 1;
                    let groups: Vec<Vec<(NodeId, u64, Vec<MapUpdate>)>> = if uniform {
                        vec![pending]
                    } else {
                        pending.into_iter().map(|tx| vec![tx]).collect()
                    };
                    for group in groups {
                        let batch = TxBatch {
                            txids: group.iter().map(|(c, s, _)| (*c, *s)).collect(),
                            clients: group.iter().map(|(c, _, _)| *c).collect(),
                            origin: self.rank,
                            updates: group.into_iter().flat_map(|(_, _, u)| u).collect(),
                        };
                        if let Some(first) = batch.txids.first().copied() {
                            let span = ctx.span_start("mon.propose", None);
                            ctx.span_tag(span, "updates", &batch.updates.len().to_string());
                            self.propose_spans.insert(first, span);
                        }
                        let out = self.paxos.submit(batch);
                        self.ship(ctx, out);
                    }
                    ctx.metrics().incr("mon.proposals", 1);
                }
                ctx.set_timer(self.config.proposal_interval, TIMER_PROPOSAL);
            }
            TIMER_HEARTBEAT => {
                let out = self.paxos.heartbeat();
                self.ship(ctx, out);
                ctx.set_timer(self.config.heartbeat_interval, TIMER_HEARTBEAT);
            }
            TIMER_ELECTION => {
                let patience = self.config.election_timeout.mul(self.rank as u64 + 1);
                let stale = ctx.now().saturating_since(self.last_leader_contact) >= patience;
                let leaderless = self.paxos.leader_hint().is_none()
                    || (stale && self.paxos.leader_hint() != Some(self.rank));
                if leaderless && !self.paxos.is_leader() {
                    let out = self.paxos.campaign();
                    self.ship(ctx, out);
                    ctx.metrics().incr("mon.elections", 1);
                }
                ctx.set_timer(patience, TIMER_ELECTION);
            }
            TIMER_MDS_LIVENESS => {
                self.reap_mds(ctx);
                ctx.set_timer(self.config.mds_beacon_grace.div(2), TIMER_MDS_LIVENESS);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mala_sim::{NetConfig, Network, Sim};

    /// A scripted client that submits updates and records replies.
    #[derive(Default)]
    struct TestClient {
        acks: Vec<(u64, Vec<(String, u64)>)>,
        snapshots: Vec<MapSnapshot>,
        changes: Vec<ChangedNotice>,
    }

    /// `(map, epoch, delta)` from a `MonMsg::Changed` notification.
    type ChangedNotice = (String, u64, Vec<(String, Option<Vec<u8>>)>);

    impl Actor for TestClient {
        fn on_message(&mut self, _ctx: &mut Context<'_>, _from: NodeId, msg: Box<dyn Any>) {
            if let Ok(msg) = msg.downcast::<MonMsg>() {
                match *msg {
                    MonMsg::SubmitAck { seq, epochs } => self.acks.push((seq, epochs)),
                    MonMsg::Snapshot(s) => self.snapshots.push(s),
                    MonMsg::Changed { map, epoch, delta } => self.changes.push((map, epoch, delta)),
                    _ => {}
                }
            }
        }
    }

    fn mon_ids(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    fn build(n: u32, config: MonConfig) -> Sim {
        let mut sim = Sim::with_network(7, Network::new(NetConfig::default()));
        let peers = mon_ids(n);
        for rank in 0..n {
            sim.add_node(
                peers[rank as usize],
                Monitor::new(rank, peers.clone(), config.clone()),
            );
        }
        sim.add_node(NodeId(100), TestClient::default());
        sim
    }

    #[test]
    fn leader_elected_and_update_commits() {
        let mut sim = build(3, MonConfig::default());
        sim.run_for(SimDuration::from_millis(500));
        assert!(sim.actor::<Monitor>(NodeId(0)).is_leader());

        sim.with_actor::<TestClient, _>(NodeId(100), |_, ctx| {
            ctx.send(
                NodeId(0),
                MonMsg::Submit {
                    seq: 1,
                    updates: vec![MapUpdate::set(SERVICE_MAP_OSD, "osd.0", b"up".to_vec())],
                },
            );
        });
        sim.run_for(SimDuration::from_secs(3));
        let client = sim.actor::<TestClient>(NodeId(100));
        assert_eq!(client.acks.len(), 1);
        assert_eq!(client.acks[0].0, 1);
        assert_eq!(client.acks[0].1, vec![(SERVICE_MAP_OSD.to_string(), 1)]);
        // All replicas applied it.
        for rank in 0..3 {
            let m = sim.actor::<Monitor>(NodeId(rank));
            let snap = m.map(SERVICE_MAP_OSD).unwrap();
            assert_eq!(snap.epoch, 1);
            assert_eq!(snap.entries["osd.0"], b"up".to_vec());
        }
    }

    #[test]
    fn submit_to_follower_commits_via_forwarding() {
        let mut sim = build(3, MonConfig::default());
        sim.run_for(SimDuration::from_millis(500));
        sim.with_actor::<TestClient, _>(NodeId(100), |_, ctx| {
            ctx.send(
                NodeId(2),
                MonMsg::Submit {
                    seq: 9,
                    updates: vec![MapUpdate::set(SERVICE_MAP_MDS, "mds.a", b"x".to_vec())],
                },
            );
        });
        sim.run_for(SimDuration::from_secs(4));
        let client = sim.actor::<TestClient>(NodeId(100));
        assert_eq!(client.acks.len(), 1, "acks: {:?}", client.acks);
    }

    #[test]
    fn get_returns_snapshot() {
        let mut sim = build(3, MonConfig::default());
        sim.run_for(SimDuration::from_millis(500));
        sim.with_actor::<TestClient, _>(NodeId(100), |_, ctx| {
            ctx.send(
                NodeId(0),
                MonMsg::Get {
                    map: "nonexistent".to_string(),
                },
            );
        });
        sim.run_for(SimDuration::from_millis(100));
        let client = sim.actor::<TestClient>(NodeId(100));
        assert_eq!(client.snapshots.len(), 1);
        assert_eq!(client.snapshots[0].epoch, 0);
        assert!(client.snapshots[0].entries.is_empty());
    }

    #[test]
    fn subscribers_get_notified_of_changes() {
        let mut sim = build(3, MonConfig::default());
        sim.run_for(SimDuration::from_millis(500));
        sim.with_actor::<TestClient, _>(NodeId(100), |_, ctx| {
            ctx.send(
                NodeId(1),
                MonMsg::Subscribe {
                    map: SERVICE_MAP_INTERFACES.to_string(),
                },
            );
        });
        sim.run_for(SimDuration::from_millis(100));
        sim.with_actor::<TestClient, _>(NodeId(100), |_, ctx| {
            ctx.send(
                NodeId(0),
                MonMsg::Submit {
                    seq: 2,
                    updates: vec![MapUpdate::set(
                        SERVICE_MAP_INTERFACES,
                        "cls_zlog",
                        b"function seal() end".to_vec(),
                    )],
                },
            );
        });
        sim.run_for(SimDuration::from_secs(3));
        let client = sim.actor::<TestClient>(NodeId(100));
        assert_eq!(client.changes.len(), 1);
        let (map, epoch, delta) = &client.changes[0];
        assert_eq!(map, SERVICE_MAP_INTERFACES);
        assert_eq!(*epoch, 1);
        assert_eq!(delta.len(), 1);
        assert_eq!(delta[0].0, "cls_zlog");
    }

    #[test]
    fn batching_applies_many_updates_in_one_epoch_bump() {
        let mut sim = build(3, MonConfig::default());
        sim.run_for(SimDuration::from_millis(500));
        // Two submits with the same shape land in the same interval → one
        // batch → one epoch bump.
        sim.with_actor::<TestClient, _>(NodeId(100), |_, ctx| {
            for seq in [10, 11] {
                ctx.send(
                    NodeId(0),
                    MonMsg::Submit {
                        seq,
                        updates: vec![MapUpdate::set(
                            SERVICE_MAP_OSD,
                            &format!("k{seq}"),
                            b"v".to_vec(),
                        )],
                    },
                );
            }
        });
        sim.run_for(SimDuration::from_secs(3));
        let m = sim.actor::<Monitor>(NodeId(0));
        let snap = m.map(SERVICE_MAP_OSD).unwrap();
        assert_eq!(snap.entries.len(), 2);
        assert_eq!(snap.epoch, 1, "both updates batched into one epoch");
        let client = sim.actor::<TestClient>(NodeId(100));
        assert_eq!(client.acks.len(), 2);
    }

    #[test]
    fn leader_failure_triggers_reelection_and_progress() {
        let mut sim = build(3, MonConfig::default());
        sim.run_for(SimDuration::from_millis(500));
        assert!(sim.actor::<Monitor>(NodeId(0)).is_leader());
        sim.crash(NodeId(0));
        // Give rank 1 time to notice (patience = 2 * 1.5s) and campaign.
        sim.run_for(SimDuration::from_secs(8));
        assert!(
            sim.actor::<Monitor>(NodeId(1)).is_leader()
                || sim.actor::<Monitor>(NodeId(2)).is_leader(),
            "a surviving monitor must take over"
        );
        sim.with_actor::<TestClient, _>(NodeId(100), |_, ctx| {
            ctx.send(
                NodeId(1),
                MonMsg::Submit {
                    seq: 50,
                    updates: vec![MapUpdate::set(
                        SERVICE_MAP_OSD,
                        "post-failover",
                        b"1".to_vec(),
                    )],
                },
            );
        });
        sim.run_for(SimDuration::from_secs(5));
        let client = sim.actor::<TestClient>(NodeId(100));
        assert_eq!(client.acks.len(), 1, "commit must succeed after failover");
    }

    #[test]
    fn deletes_remove_keys() {
        let mut sim = build(3, MonConfig::default());
        sim.run_for(SimDuration::from_millis(500));
        sim.with_actor::<TestClient, _>(NodeId(100), |_, ctx| {
            ctx.send(
                NodeId(0),
                MonMsg::Submit {
                    seq: 1,
                    updates: vec![MapUpdate::set(SERVICE_MAP_OSD, "k", b"v".to_vec())],
                },
            );
        });
        sim.run_for(SimDuration::from_secs(2));
        sim.with_actor::<TestClient, _>(NodeId(100), |_, ctx| {
            ctx.send(
                NodeId(0),
                MonMsg::Submit {
                    seq: 2,
                    updates: vec![MapUpdate::del(SERVICE_MAP_OSD, "k")],
                },
            );
        });
        sim.run_for(SimDuration::from_secs(2));
        let m = sim.actor::<Monitor>(NodeId(0));
        let snap = m.map(SERVICE_MAP_OSD).unwrap();
        assert!(snap.entries.is_empty());
        assert_eq!(snap.epoch, 2);
    }

    #[test]
    fn shorter_proposal_interval_lowers_commit_latency() {
        let commit_latency = |interval_ms: u64| -> f64 {
            let config = MonConfig {
                proposal_interval: SimDuration::from_millis(interval_ms),
                ..MonConfig::default()
            };
            let mut sim = build(3, config);
            sim.run_for(SimDuration::from_millis(500));
            let t0 = sim.now();
            sim.with_actor::<TestClient, _>(NodeId(100), |_, ctx| {
                ctx.send(
                    NodeId(0),
                    MonMsg::Submit {
                        seq: 1,
                        updates: vec![MapUpdate::set(SERVICE_MAP_OSD, "k", b"v".to_vec())],
                    },
                );
            });
            let acked = sim.run_until_pred(t0 + SimDuration::from_secs(10), |s| {
                !s.actor::<TestClient>(NodeId(100)).acks.is_empty()
            });
            assert!(acked);
            sim.now().since(t0).as_millis_f64()
        };
        let slow = commit_latency(1000);
        let fast = commit_latency(222);
        assert!(
            fast < slow,
            "222 ms interval ({fast} ms) must beat 1 s interval ({slow} ms)"
        );
    }

    #[test]
    fn paxos_message_from_rogue_sender_is_dropped_not_fatal() {
        use crate::paxos::Ballot;
        let mut sim = build(3, MonConfig::default());
        sim.run_for(SimDuration::from_millis(500));
        assert!(sim.actor::<Monitor>(NodeId(0)).is_leader());
        // NodeId(100) is the test client — not in the monitor quorum. Its
        // Paxos traffic must be discarded, not crash the monitor or steer
        // consensus.
        sim.with_actor::<TestClient, _>(NodeId(100), |_, ctx| {
            ctx.send(
                NodeId(0),
                MonWire(PaxosMsg::Heartbeat {
                    ballot: Ballot {
                        round: 99,
                        proposer: 2,
                    },
                    chosen_up_to: 0,
                }),
            );
            ctx.send(
                NodeId(1),
                MonWire(PaxosMsg::Prepare {
                    ballot: Ballot {
                        round: 100,
                        proposer: 1,
                    },
                }),
            );
        });
        sim.run_for(SimDuration::from_millis(200));
        assert_eq!(sim.metrics().counter("mon.paxos_rogue_msgs"), 2);
        // The quorum still commits afterwards.
        sim.with_actor::<TestClient, _>(NodeId(100), |_, ctx| {
            ctx.send(
                NodeId(0),
                MonMsg::Submit {
                    seq: 1,
                    updates: vec![MapUpdate::set(SERVICE_MAP_OSD, "k", b"v".to_vec())],
                },
            );
        });
        sim.run_for(SimDuration::from_secs(3));
        assert_eq!(sim.actor::<TestClient>(NodeId(100)).acks.len(), 1);
    }

    #[test]
    fn invalid_pool_updates_are_rejected_at_commit() {
        let mut sim = build(3, MonConfig::default());
        sim.run_for(SimDuration::from_millis(500));
        sim.with_actor::<TestClient, _>(NodeId(100), |_, ctx| {
            ctx.send(
                NodeId(0),
                MonMsg::Submit {
                    seq: 1,
                    updates: vec![
                        // Operator typo: a zero pg_num would panic-or-wedge
                        // placement on every daemon.
                        MapUpdate::set(
                            SERVICE_MAP_OSD,
                            "pool.bad",
                            b"pg_num=0,replicas=3".to_vec(),
                        ),
                        MapUpdate::set(
                            SERVICE_MAP_OSD,
                            "pool.typo",
                            b"pg_num=sixty,replicas=3".to_vec(),
                        ),
                        MapUpdate::set(SERVICE_MAP_OSD, "pool.ok", b"pg_num=8,replicas=2".to_vec()),
                    ],
                },
            );
        });
        sim.run_for(SimDuration::from_secs(3));
        // The valid update committed; the invalid ones never entered the
        // authoritative map, on any replica.
        for rank in 0..3 {
            let m = sim.actor::<Monitor>(NodeId(rank));
            let snap = m.map(SERVICE_MAP_OSD).unwrap();
            assert!(snap.entries.contains_key("pool.ok"));
            assert!(!snap.entries.contains_key("pool.bad"));
            assert!(!snap.entries.contains_key("pool.typo"));
        }
        assert!(sim.metrics().counter("mon.osdmap_rejected_updates") >= 2);
        // Deleting a pool entry is still allowed (value None skips
        // validation).
        sim.with_actor::<TestClient, _>(NodeId(100), |_, ctx| {
            ctx.send(
                NodeId(0),
                MonMsg::Submit {
                    seq: 2,
                    updates: vec![MapUpdate::del(SERVICE_MAP_OSD, "pool.ok")],
                },
            );
        });
        sim.run_for(SimDuration::from_secs(3));
        let snap_entries = &sim
            .actor::<Monitor>(NodeId(0))
            .map(SERVICE_MAP_OSD)
            .unwrap()
            .entries;
        assert!(!snap_entries.contains_key("pool.ok"));
    }
}
