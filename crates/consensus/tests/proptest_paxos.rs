//! Property tests for Paxos safety.
//!
//! Under arbitrary message loss, reordering, and competing campaigns:
//!
//! * **Agreement** — no two replicas choose different commands for the same
//!   slot.
//! * **Validity** — every chosen command was actually submitted.

use mala_consensus::paxos::{Outbound, PaxosNode};
use proptest::prelude::*;
use std::collections::HashMap;

type Node = PaxosNode<u64>;

/// A scripted action in the fuzz schedule.
#[derive(Debug, Clone)]
enum Action {
    /// Replica campaigns for leadership.
    Campaign(u32),
    /// Replica receives a client command.
    Submit(u32, u64),
    /// Deliver the i-th oldest in-flight message (mod queue length).
    Deliver(usize),
    /// Drop the i-th oldest in-flight message (mod queue length).
    Drop(usize),
    /// Replica emits a heartbeat.
    Heartbeat(u32),
}

fn arb_action(n: u32) -> impl Strategy<Value = Action> {
    prop_oneof![
        1 => (0..n).prop_map(Action::Campaign),
        3 => ((0..n), (1u64..100)).prop_map(|(r, c)| Action::Submit(r, c)),
        12 => (0usize..64).prop_map(Action::Deliver),
        3 => (0usize..64).prop_map(Action::Drop),
        1 => (0..n).prop_map(Action::Heartbeat),
    ]
}

fn run_schedule(n: u32, actions: &[Action]) -> (Vec<Node>, Vec<u64>) {
    let mut nodes: Vec<Node> = (0..n).map(|i| Node::new(i, n)).collect();
    let mut wire: Vec<(u32, Outbound<u64>)> = Vec::new();
    let mut submitted: Vec<u64> = Vec::new();
    for action in actions {
        match action {
            Action::Campaign(r) => {
                let out = nodes[*r as usize].campaign();
                wire.extend(out.into_iter().map(|o| (*r, o)));
            }
            Action::Submit(r, c) => {
                submitted.push(*c);
                let out = nodes[*r as usize].submit(*c);
                wire.extend(out.into_iter().map(|o| (*r, o)));
            }
            Action::Deliver(i) => {
                if wire.is_empty() {
                    continue;
                }
                let (from, out) = wire.remove(i % wire.len());
                let replies = nodes[out.to as usize].on_message(from, out.msg);
                let to = out.to;
                wire.extend(replies.into_iter().map(|r| (to, r)));
            }
            Action::Drop(i) => {
                if wire.is_empty() {
                    continue;
                }
                wire.remove(i % wire.len());
            }
            Action::Heartbeat(r) => {
                let out = nodes[*r as usize].heartbeat();
                wire.extend(out.into_iter().map(|o| (*r, o)));
            }
        }
    }
    // Drain the remaining wire in order, so liveness-ish checks see a
    // settled system (safety must hold at every prefix regardless).
    while let Some((from, out)) = wire.pop() {
        let replies = nodes[out.to as usize].on_message(from, out.msg);
        let to = out.to;
        wire.extend(replies.into_iter().map(|r| (to, r)));
    }
    (nodes, submitted)
}

fn check_agreement_and_validity(nodes: &[Node], submitted: &[u64]) -> Result<(), TestCaseError> {
    let mut decided: HashMap<u64, u64> = HashMap::new();
    for node in nodes {
        for (slot, cmd) in node.chosen_from(0) {
            if let Some(prev) = decided.insert(slot, *cmd) {
                prop_assert_eq!(
                    prev,
                    *cmd,
                    "disagreement at slot {}: {} vs {}",
                    slot,
                    prev,
                    cmd
                );
            }
            prop_assert!(
                submitted.contains(cmd),
                "chosen command {} was never submitted",
                cmd
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn three_replicas_agree_under_chaos(
        actions in prop::collection::vec(arb_action(3), 0..200)
    ) {
        let (nodes, submitted) = run_schedule(3, &actions);
        check_agreement_and_validity(&nodes, &submitted)?;
    }

    #[test]
    fn five_replicas_agree_under_chaos(
        actions in prop::collection::vec(arb_action(5), 0..300)
    ) {
        let (nodes, submitted) = run_schedule(5, &actions);
        check_agreement_and_validity(&nodes, &submitted)?;
    }

    #[test]
    fn lossless_single_leader_run_decides_everything(
        cmds in prop::collection::vec(1u64..1000, 1..20)
    ) {
        let mut nodes: Vec<Node> = (0..3).map(|i| Node::new(i, 3)).collect();
        let mut wire: Vec<(u32, Outbound<u64>)> = nodes[0]
            .campaign()
            .into_iter()
            .map(|o| (0, o))
            .collect();
        while let Some((from, out)) = wire.pop() {
            let replies = nodes[out.to as usize].on_message(from, out.msg);
            let to = out.to;
            wire.extend(replies.into_iter().map(|r| (to, r)));
        }
        for c in &cmds {
            let out = nodes[0].submit(*c);
            wire.extend(out.into_iter().map(|o| (0, o)));
            while let Some((from, out)) = wire.pop() {
                let replies = nodes[out.to as usize].on_message(from, out.msg);
                let to = out.to;
                wire.extend(replies.into_iter().map(|r| (to, r)));
            }
        }
        for node in &nodes {
            let log: Vec<u64> = node.chosen_from(0).map(|(_, c)| *c).collect();
            prop_assert_eq!(&log, &cmds);
        }
    }
}
