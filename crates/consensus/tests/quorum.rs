//! Monitor-quorum behaviour under partitions: a majority keeps
//! committing, a minority stalls, and healing reconciles everyone.

use mala_consensus::{MapUpdate, MonConfig, MonMsg, Monitor};
use mala_sim::{NodeId, Sim, SimDuration};

fn build(n: u32) -> Sim {
    let mut sim = Sim::new(19);
    let peers: Vec<NodeId> = (0..n).map(NodeId).collect();
    for rank in 0..n {
        sim.add_node(
            peers[rank as usize],
            Monitor::new(rank, peers.clone(), MonConfig::default()),
        );
    }
    sim.run_for(SimDuration::from_secs(1));
    sim
}

fn submit(sim: &mut Sim, to: NodeId, seq: u64, key: &str) {
    sim.inject(
        to,
        MonMsg::Submit {
            seq,
            updates: vec![MapUpdate::set("testmap", key, b"v".to_vec())],
        },
    );
}

fn epoch_at(sim: &Sim, mon: NodeId) -> u64 {
    sim.actor::<Monitor>(mon)
        .map("testmap")
        .map(|m| m.epoch)
        .unwrap_or(0)
}

#[test]
fn majority_partition_keeps_committing() {
    let mut sim = build(5);
    // Isolate monitors 3 and 4 from the rest (leader 0 stays in majority).
    for minority in [3u32, 4] {
        for majority in 0..3u32 {
            sim.network_mut().sever(NodeId(minority), NodeId(majority));
        }
    }
    submit(&mut sim, NodeId(0), 1, "during-partition");
    sim.run_for(SimDuration::from_secs(5));
    assert!(epoch_at(&sim, NodeId(0)) >= 1, "majority must commit");
    assert_eq!(epoch_at(&sim, NodeId(4)), 0, "minority must not see it");
    // Heal: the minority catches up via leader heartbeats.
    sim.network_mut().heal_all();
    sim.run_for(SimDuration::from_secs(5));
    for rank in 0..5 {
        assert!(
            epoch_at(&sim, NodeId(rank)) >= 1,
            "monitor {rank} never caught up"
        );
    }
}

#[test]
fn minority_leader_cannot_commit_until_healed() {
    let mut sim = build(3);
    assert!(sim.actor::<Monitor>(NodeId(0)).is_leader());
    // Cut the leader off from both followers: no quorum, no commits.
    sim.network_mut().isolate(NodeId(0));
    submit(&mut sim, NodeId(0), 1, "stranded");
    sim.run_for(SimDuration::from_secs(4));
    assert_eq!(epoch_at(&sim, NodeId(1)), 0);
    assert_eq!(epoch_at(&sim, NodeId(2)), 0);
    // Heal; either the old leader resumes or a new one took over — the
    // stranded update must eventually commit exactly once everywhere.
    sim.network_mut().heal_all();
    sim.run_for(SimDuration::from_secs(15));
    let epochs: Vec<u64> = (0..3).map(|r| epoch_at(&sim, NodeId(r))).collect();
    assert!(
        epochs.iter().all(|e| *e == 1),
        "update must commit exactly once everywhere after heal: {epochs:?}"
    );
}

#[test]
fn five_monitor_quorum_survives_two_crashes() {
    let mut sim = build(5);
    sim.crash(NodeId(3));
    sim.crash(NodeId(4));
    submit(&mut sim, NodeId(0), 1, "k");
    sim.run_for(SimDuration::from_secs(5));
    for rank in 0..3 {
        assert!(epoch_at(&sim, NodeId(rank)) >= 1, "monitor {rank} behind");
    }
}

#[test]
fn duplicate_submissions_apply_once() {
    let mut sim = build(3);
    // Same (client, seq) submitted twice — e.g. a client retry.
    submit(&mut sim, NodeId(0), 7, "once");
    submit(&mut sim, NodeId(0), 7, "once");
    sim.run_for(SimDuration::from_secs(4));
    assert_eq!(
        epoch_at(&sim, NodeId(0)),
        1,
        "dedup must keep one epoch bump"
    );
}
