//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no crates-io access, so this workspace vendors
//! the criterion API subset its benches use: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] (with `sample_size`/`finish`),
//! [`Bencher::iter`], and the `criterion_group!`/`criterion_main!` macros.
//! Instead of criterion's statistical analysis it runs a fixed warm-up
//! iteration followed by `sample_size` timed samples and prints
//! min/mean/max per benchmark — enough to eyeball regressions and to keep
//! `cargo bench` compiling and running offline.

use std::time::{Duration, Instant};

/// Runs the closure under timing; handed to bench bodies.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine`, recording one sample per configured run.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up (untimed) so lazy initialisation doesn't skew sample 0.
        std::hint::black_box(routine());
        for _ in 0..self.samples.capacity() {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                std::hint::black_box(routine());
            }
            self.samples
                .push(start.elapsed() / self.iters_per_sample as u32);
        }
    }
}

fn report(name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{name:40} (no samples)");
        return;
    }
    let min = samples.iter().min().expect("nonempty");
    let max = samples.iter().max().expect("nonempty");
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!("{name:40} min {min:>12.3?}  mean {mean:>12.3?}  max {max:>12.3?}");
}

/// The top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // Far below the real crate's 100: these benches simulate seconds of
        // virtual time per iteration and must finish quickly offline.
        Criterion { sample_size: 5 }
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut body: F) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            iters_per_sample: 1,
        };
        body(&mut bencher);
        report(name, &bencher.samples);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            sample_size: None,
        }
    }
}

/// A named group; configuration set here overrides the parent's.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut body: F) -> &mut Self {
        let samples = self.sample_size.unwrap_or(self.parent.sample_size);
        let mut bencher = Bencher {
            samples: Vec::with_capacity(samples),
            iters_per_sample: 1,
        };
        body(&mut bencher);
        report(&format!("{}/{}", self.name, name), &bencher.samples);
        self
    }

    /// Ends the group (prints nothing; exists for API compatibility).
    pub fn finish(self) {}
}

/// Declares a function that runs the listed benchmarks in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut runs = 0u32;
        c.bench_function("noop", |b| b.iter(|| runs += 1));
        // 1 warm-up + sample_size timed runs.
        assert_eq!(runs, 6);
    }

    #[test]
    fn group_sample_size_overrides() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut runs = 0u32;
        group.bench_function("noop", |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 3);
    }
}
