//! Strategies: composable deterministic value generators (no shrinking).

use std::fmt::Debug;
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A generator of test values.
///
/// Unlike the real crate there is no value tree: a strategy simply draws a
/// value from the seeded [`TestRng`]. Failures replay by seed, not by
/// shrinking.
pub trait Strategy: 'static {
    /// The generated type.
    type Value: Debug + Clone + 'static;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: Debug + Clone + 'static,
        F: Fn(Self::Value) -> U + 'static,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `pred`. Panics if 1000 consecutive
    /// draws are rejected (matching the real crate's global-reject abort).
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool + 'static,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }

    /// Chains a dependent strategy.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2 + 'static,
    {
        FlatMap { inner: self, f }
    }

    /// Builds recursive structures: `recurse` receives the strategy for
    /// the previous depth level and returns the composite level. `levels`
    /// bounds nesting depth; the size hints are accepted for API
    /// compatibility but depth alone bounds generation here.
    fn prop_recursive<S2, F>(
        self,
        levels: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        S2: Strategy<Value = Self::Value>,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut level = leaf.clone();
        for _ in 0..levels {
            // Mix the leaf back in at every level so generated trees have
            // plenty of terminals and bounded expected size.
            level = Union::new(vec![(2, leaf.clone()), (1, recurse(level).boxed())]).boxed();
        }
        level
    }

    /// Type-erases the strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Object-safe inner vtable for [`BoxedStrategy`].
trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: Debug + Clone + 'static> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Debug + Clone + 'static> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    U: Debug + Clone + 'static,
    F: Fn(S::Value) -> U + 'static,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool + 'static,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted 1000 draws: {}", self.reason);
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2 + 'static,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Weighted choice between strategies of one value type (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T: Debug + Clone + 'static> Union<T> {
    /// Builds a union; weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof: all weights are zero");
        Union { arms, total }
    }
}

impl<T: Debug + Clone + 'static> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, strat) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return strat.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weighted pick out of range")
    }
}

// ---- primitive strategies ----

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*}
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// Types with a canonical whole-domain strategy ([`any`]).
pub trait Arbitrary: Debug + Clone + 'static {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*}
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T` (`any::<bool>()`, `any::<u64>()`...).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// ---- tuples ----

macro_rules! impl_tuple_strategy {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                $(let $v = $s.generate(rng);)+
                ($($v,)+)
            }
        }
    }
}
impl_tuple_strategy!(S1 / v1);
impl_tuple_strategy!(S1 / v1, S2 / v2);
impl_tuple_strategy!(S1 / v1, S2 / v2, S3 / v3);
impl_tuple_strategy!(S1 / v1, S2 / v2, S3 / v3, S4 / v4);
impl_tuple_strategy!(S1 / v1, S2 / v2, S3 / v3, S4 / v4, S5 / v5);
impl_tuple_strategy!(S1 / v1, S2 / v2, S3 / v3, S4 / v4, S5 / v5, S6 / v6);

// ---- string regex strategies ----

/// A `&'static str` is interpreted as a generation pattern over a small
/// regex subset: literal characters, classes `[a-z0-9_]` (ranges and
/// literals), and quantifiers `{m,n}`, `{n}`, `?`, `*`, `+` (the
/// unbounded forms cap at 8 repeats).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_pattern(self, rng)
    }
}

enum PatAtom {
    Lit(char),
    Class(Vec<(char, char)>),
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<(char, char)> {
    let mut ranges = Vec::new();
    let mut pending: Vec<char> = Vec::new();
    while let Some(c) = chars.next() {
        match c {
            ']' => {
                for p in pending {
                    ranges.push((p, p));
                }
                return ranges;
            }
            '-' if !pending.is_empty() && chars.peek().is_some_and(|n| *n != ']') => {
                let lo = pending.pop().expect("peeked");
                let hi = chars.next().expect("peeked");
                ranges.push((lo, hi));
            }
            '\\' => {
                let esc = chars.next().expect("dangling escape in pattern");
                pending.push(esc);
            }
            other => pending.push(other),
        }
    }
    panic!("unterminated character class in pattern");
}

fn parse_quantifier(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> (usize, usize) {
    match chars.peek() {
        Some('{') => {
            chars.next();
            let mut body = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    break;
                }
                body.push(c);
            }
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("bad quantifier"),
                    n.trim().parse().expect("bad quantifier"),
                ),
                None => {
                    let n: usize = body.trim().parse().expect("bad quantifier");
                    (n, n)
                }
            }
        }
        Some('?') => {
            chars.next();
            (0, 1)
        }
        Some('*') => {
            chars.next();
            (0, 8)
        }
        Some('+') => {
            chars.next();
            (1, 8)
        }
        _ => (1, 1),
    }
}

fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut chars = pattern.chars().peekable();
    let mut out = String::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => PatAtom::Class(parse_class(&mut chars)),
            '\\' => PatAtom::Lit(chars.next().expect("dangling escape in pattern")),
            other => PatAtom::Lit(other),
        };
        let (lo, hi) = parse_quantifier(&mut chars);
        let count = if lo == hi {
            lo
        } else {
            rng.usize_in(lo, hi + 1)
        };
        for _ in 0..count {
            match &atom {
                PatAtom::Lit(ch) => out.push(*ch),
                PatAtom::Class(ranges) => {
                    let total: u64 = ranges
                        .iter()
                        .map(|(a, b)| u64::from(*b as u32) - u64::from(*a as u32) + 1)
                        .sum();
                    let mut pick = rng.below(total.max(1));
                    for (a, b) in ranges {
                        let span = u64::from(*b as u32) - u64::from(*a as u32) + 1;
                        if pick < span {
                            out.push(char::from_u32(*a as u32 + pick as u32).expect("class range"));
                            break;
                        }
                        pick -= span;
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::new(42)
    }

    #[test]
    fn ranges_and_just() {
        let mut r = rng();
        for _ in 0..100 {
            let v = (3u32..9).generate(&mut r);
            assert!((3..9).contains(&v));
            assert_eq!(Just(7u8).generate(&mut r), 7);
        }
    }

    #[test]
    fn map_filter_flat_map() {
        let mut r = rng();
        let even = (0u32..100).prop_map(|v| v * 2);
        assert!(even.generate(&mut r) % 2 == 0);
        let nonzero = (0u32..10).prop_filter("nonzero", |v| *v != 0);
        for _ in 0..50 {
            assert_ne!(nonzero.generate(&mut r), 0);
        }
        let dependent = (1usize..4).prop_flat_map(|n| crate::collection::vec(0u8..10, n..n + 1));
        for _ in 0..20 {
            let v = dependent.generate(&mut r);
            assert!((1..4).contains(&v.len()));
        }
    }

    #[test]
    fn union_respects_zero_weight_arms() {
        let mut r = rng();
        let u = Union::new(vec![(1, Just(1u8).boxed()), (3, Just(2u8).boxed())]);
        let mut saw = [0u32; 3];
        for _ in 0..200 {
            saw[u.generate(&mut r) as usize] += 1;
        }
        assert!(saw[1] > 0 && saw[2] > saw[1]);
    }

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[a-z][a-z0-9_]{0,6}".generate(&mut r);
            assert!(!s.is_empty() && s.len() <= 7, "{s:?}");
            assert!(s.chars().next().expect("nonempty").is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
            let t = "[ -~]{0,8}".generate(&mut r);
            assert!(t.len() <= 8);
            assert!(t.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn recursive_bounds_depth() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = (0u8..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 24, 4, |inner| {
                crate::collection::vec(inner, 0..3).prop_map(Tree::Node)
            });
        let mut r = rng();
        for _ in 0..100 {
            assert!(depth(&strat.generate(&mut r)) <= 4);
        }
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut r = rng();
        let (a, b, c) = ((0u8..4), Just("x"), (10i64..12)).generate(&mut r);
        assert!(a < 4);
        assert_eq!(b, "x");
        assert!((10..12).contains(&c));
    }
}
