//! Option strategies (`prop::option`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy producing `Option<S::Value>`, `Some` three times out of four
/// (the real crate's default weighting).
#[derive(Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

/// Generates `Option`s over `inner`'s values.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixes_some_and_none() {
        let mut rng = TestRng::new(11);
        let strat = of(0u8..100);
        let mut some = 0;
        let mut none = 0;
        for _ in 0..400 {
            match strat.generate(&mut rng) {
                Some(_) => some += 1,
                None => none += 1,
            }
        }
        assert!(some > 200 && none > 40, "some={some} none={none}");
    }
}
