//! Collection strategies (`prop::collection`).

use std::collections::BTreeSet;
use std::fmt::Debug;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Half-open size bound for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

impl SizeRange {
    fn pick(self, rng: &mut TestRng) -> usize {
        rng.usize_in(self.lo, self.hi)
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates vectors of `element` with length in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy for `BTreeSet<S::Value>` targeting a size drawn from `size`.
#[derive(Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.pick(rng);
        let mut set = BTreeSet::new();
        // Duplicates shrink the set; bounded retries keep generation total
        // even when the element domain is smaller than the target size.
        for _ in 0..target * 4 + 8 {
            if set.len() >= target {
                break;
            }
            set.insert(self.element.generate(rng));
        }
        set
    }
}

/// Generates `BTreeSet`s of `element` targeting a size in `size`.
pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_size_range() {
        let mut rng = TestRng::new(9);
        let strat = vec(0u8..4, 2..6);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|x| *x < 4));
        }
        let exact = vec(0u8..4, 3usize);
        assert_eq!(exact.generate(&mut rng).len(), 3);
    }

    #[test]
    fn btree_set_bounded_by_domain() {
        let mut rng = TestRng::new(10);
        let strat = btree_set(0u8..3, 0..10);
        for _ in 0..50 {
            assert!(strat.generate(&mut rng).len() <= 3);
        }
    }
}
