//! Case generation, seeding, and the failure/replay protocol.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Non-panicking test-case outcome: a discarded input (`prop_assume!`) or
/// an explicit failure (`TestCaseError::fail`, usable with `?`).
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The input does not apply; the case counts as neither pass nor fail.
    Reject,
    /// The property failed with the given message.
    Fail(String),
}

impl TestCaseError {
    /// An explicit failure carrying `reason`.
    pub fn fail(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(reason.into())
    }
}

/// Per-test configuration (subset of the real crate's).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated inputs.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The deterministic generator handed to strategies (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator whose stream is a pure function of `seed`.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw below `n` (`n` must be non-zero).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty size range");
        lo + self.below((hi - lo) as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// FNV-1a over the test path: the deterministic base seed.
fn base_seed(test_path: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in test_path.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn regression_seeds(manifest_dir: &str, test_name: &str) -> Vec<u64> {
    let path = format!("{manifest_dir}/proptest-regressions/{test_name}.seeds");
    let Ok(text) = std::fs::read_to_string(&path) else {
        return Vec::new();
    };
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| l.parse::<u64>().ok())
        .collect()
}

/// Drives one property test: regression seeds first, then `cases`
/// generated seeds (or exactly `PROPTEST_SEED` when set). On failure the
/// seed is printed and the panic is rethrown, so the harness still reports
/// the test as failed and the seed reproduces the input deterministically.
pub fn run_cases<F>(
    manifest_dir: &str,
    test_path: &str,
    test_name: &str,
    config: &ProptestConfig,
    mut case: F,
) where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut run_one = |seed: u64, origin: &str| {
        let mut rng = TestRng::new(seed);
        let replay_note = || {
            eprintln!(
                "proptest: {test_path} failed ({origin}, seed = {seed}); \
                 rerun with PROPTEST_SEED={seed} to replay this exact input"
            );
        };
        match catch_unwind(AssertUnwindSafe(|| case(&mut rng))) {
            Ok(Ok(())) | Ok(Err(TestCaseError::Reject)) => {}
            Ok(Err(TestCaseError::Fail(reason))) => {
                replay_note();
                panic!("property failed: {reason}");
            }
            Err(panic) => {
                replay_note();
                resume_unwind(panic);
            }
        }
    };

    if let Ok(fixed) = std::env::var("PROPTEST_SEED") {
        let seed: u64 = fixed
            .trim()
            .parse()
            .expect("PROPTEST_SEED must be a decimal u64");
        run_one(seed, "PROPTEST_SEED");
        return;
    }

    for seed in regression_seeds(manifest_dir, test_name) {
        run_one(seed, "regression file");
    }

    let cases = match std::env::var("PROPTEST_CASES") {
        Ok(v) => v
            .trim()
            .parse::<u32>()
            .expect("PROPTEST_CASES must be a u32"),
        Err(_) => config.cases,
    };
    let base = base_seed(test_path);
    for i in 0..u64::from(cases) {
        // Spread seeds so neighbouring cases are uncorrelated.
        run_one(
            base.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            "generated",
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(5);
        let mut b = TestRng::new(5);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_eq!(a.usize_in(3, 9), b.usize_in(3, 9));
    }

    #[test]
    fn base_seed_differs_by_path() {
        assert_ne!(base_seed("a::b"), base_seed("a::c"));
    }

    #[test]
    fn run_cases_runs_requested_count() {
        let mut n = 0;
        run_cases(
            env!("CARGO_MANIFEST_DIR"),
            "x::y",
            "y",
            &ProptestConfig::with_cases(17),
            |_| {
                n += 1;
                Ok(())
            },
        );
        // PROPTEST_CASES may scale this in exotic environments; by default
        // it must be exactly the configured count.
        if std::env::var("PROPTEST_CASES").is_err() && std::env::var("PROPTEST_SEED").is_err() {
            assert_eq!(n, 17);
        }
    }
}
