//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no crates-io access, so this workspace vendors
//! the proptest API subset its property tests use. Differences from the
//! real crate, by design:
//!
//! * **No shrinking.** A failing case is reported with the seed that
//!   produced it; rerun with `PROPTEST_SEED=<seed>` to replay exactly that
//!   input deterministically.
//! * **Deterministic by default.** Each test derives its base seed from
//!   its own path, so CI runs are reproducible. Set `PROPTEST_SEED` to
//!   explore a different region, `PROPTEST_CASES` to scale case counts.
//! * **Regression replay.** Seeds listed in
//!   `<crate>/proptest-regressions/<test_name>.seeds` (one decimal `u64`
//!   per line, `#` comments) run before the generated cases.
//!
//! Supported surface: `proptest!`, `prop_oneof!`, `prop_assert!`,
//! `prop_assert_eq!`, `prop_assert_ne!`, `prop_assume!`, [`Strategy`]
//! (`prop_map`, `prop_filter`, `prop_flat_map`, `prop_recursive`,
//! `boxed`), [`Just`], `any`, ranges and `&str` regexes as strategies,
//! tuples up to 6, `prop::collection::{vec, btree_set}`,
//! `prop::option::of`, [`ProptestConfig::with_cases`].

#![allow(clippy::test_attr_in_doctest)]

pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    pub mod prop {
        //! Mirrors the real crate's `prelude::prop` module alias.
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Runs the body as a property test over generated inputs.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn holds(x in 0u32..100, v in prop::collection::vec(any::<bool>(), 0..8)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    // Internal expansion — must precede the catch-all rule, which would
    // otherwise re-wrap `@cfg` invocations forever.
    (@cfg ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            $crate::test_runner::run_cases(
                env!("CARGO_MANIFEST_DIR"),
                concat!(module_path!(), "::", stringify!($name)),
                stringify!($name),
                &__config,
                |__rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                    let __out: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { { $body } ::std::result::Result::Ok(()) })();
                    __out
                },
            );
        }
    )*};
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Weighted or unweighted union of strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Asserts within a property test (no shrinking, so plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assertion within a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assertion within a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Discards the current case (counts as neither pass nor failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
