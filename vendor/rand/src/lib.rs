//! Offline stand-in for the `rand` crate.
//!
//! The build container has no crates-io access, so this workspace vendors
//! the small `rand` 0.8 API subset it actually uses: [`Rng`] with
//! `gen`/`gen_range`/`gen_bool`, [`SeedableRng::seed_from_u64`], a
//! deterministic [`rngs::StdRng`], and [`seq::SliceRandom`] for
//! shuffle/choose. The generator is xoshiro256** seeded via splitmix64 —
//! statistically strong enough for simulation workloads and fully
//! deterministic from a `u64` seed.
//!
//! Only determinism, not the exact stream of the real `rand::StdRng`, is
//! promised; nothing in this repository depends on the concrete stream.

/// Types that can be sampled uniformly over their full domain by
/// [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 random bits into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*}
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

/// Ranges acceptable to [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled element type.
    type Output;
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u128;
                self.start + (u128::sample_from(rng) % span) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end - start) as u128 + 1;
                start + (u128::sample_from(rng) % span) as $t
            }
        }
    )*}
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = self.end.wrapping_sub(self.start) as $u as u128;
                self.start.wrapping_add((u128::sample_from(rng) % span) as $u as $t)
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = end.wrapping_sub(start) as $u as u128 + 1;
                start.wrapping_add((u128::sample_from(rng) % span) as $u as $t)
            }
        }
    )*}
}
impl_sample_range_signed!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample_from(rng) * (self.end - self.start)
    }
}

impl SampleRange for std::ops::Range<f32> {
    type Output = f32;
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f32::sample_from(rng) * (self.end - self.start)
    }
}

/// A source of randomness (the `Rng`/`RngCore` split of the real crate is
/// collapsed into one trait here).
pub trait Rng {
    /// The core primitive: the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value uniformly over `T`'s domain (`f64` ⇒ `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_from(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_from(self) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of reproducible generators from integer seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // Expand the seed with splitmix64, per the xoshiro authors'
            // recommendation; guarantees a non-zero state.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence helpers.

    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly picks one element, `None` on an empty slice.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(0u64..=5);
            assert!(w <= 5);
            let x = r.gen_range(-3i64..3);
            assert!((-3..3).contains(&x));
            let y = r.gen_range(0.5f64..2.0);
            assert!((0.5..2.0).contains(&y));
        }
    }

    #[test]
    fn gen_bool_probability() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn shuffle_permutes_and_choose_picks() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        let orig = v.clone();
        v.shuffle(&mut r);
        assert_ne!(v, orig);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
        assert!(v.choose(&mut r).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }
}
