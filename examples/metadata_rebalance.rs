//! Programmable load balancing end to end: inject a Mantle policy through
//! the *full* versioned + durable path the paper describes (§5.1) —
//! policy source stored as a RADOS object, version pointer committed to
//! the monitor's `mantle` map, every MDS fetching and installing it on
//! its balancing tick — then watch it migrate hot sequencers and report
//! to the central cluster log.
//!
//! Run with: `cargo run --example metadata_rebalance`

use mala_consensus::Monitor;
use mala_mds::server::Mds;
use mala_mds::types::MdsMsg;
use mala_mds::FileType;
use mala_rados::ObjectId;
use mala_sim::SimDuration;
use mala_zlog::{SeqMode, SeqWorkload};
use malacology::cluster::ClusterBuilder;
use malacology::interfaces::{durability, load_balancing};

fn main() {
    // Three MDS ranks, each running a Mantle balancer with NO policy yet:
    // until a policy is published, nothing migrates.
    let mds_config = mala_mds::MdsConfig {
        balance_interval: SimDuration::from_secs(5),
        ..mala_mds::MdsConfig::default()
    };
    let mut cluster = ClusterBuilder::new()
        .monitors(1)
        .osds(4)
        .mds_ranks(3)
        .mds_config(mds_config)
        .pool("meta", 32, 2)
        .balancers(|_| Box::new(load_balancing::MantleBalancer::new()))
        .build(3);

    // Three sequencers on rank 0, four round-trip clients each — the
    // Fig. 9 workload.
    let admin = cluster.alloc_node();
    cluster
        .sim
        .add_node(admin, mala_bench_admin::AdminClient::default());
    let mds0 = cluster.mds_node(0);
    cluster
        .sim
        .with_actor::<mala_bench_admin::AdminClient, _>(admin, |_, ctx| {
            ctx.send(
                mds0,
                MdsMsg::Create {
                    reqid: 1,
                    parent_path: "/".into(),
                    name: "tenants".into(),
                    ftype: FileType::Dir,
                },
            );
        });
    cluster.sim.run_for(SimDuration::from_millis(100));
    let mut inos = Vec::new();
    for (i, tenant) in ["alpha", "beta", "gamma"].iter().enumerate() {
        cluster
            .sim
            .with_actor::<mala_bench_admin::AdminClient, _>(admin, |_, ctx| {
                ctx.send(
                    mds0,
                    MdsMsg::Create {
                        reqid: 10 + i as u64,
                        parent_path: "/tenants".into(),
                        name: format!("{tenant}-seq"),
                        ftype: FileType::Sequencer,
                    },
                );
            });
        cluster.sim.run_for(SimDuration::from_millis(100));
        let ino = cluster
            .sim
            .actor::<mala_bench_admin::AdminClient>(admin)
            .created(10 + i as u64);
        inos.push(ino);
    }
    let mds_nodes = cluster.mds_nodes();
    let mut workers = Vec::new();
    for (k, ino) in inos.iter().enumerate() {
        for c in 0..4 {
            let node = cluster.alloc_node();
            cluster.sim.add_node(
                node,
                SeqWorkload::new(
                    mds_nodes.clone(),
                    0,
                    *ino,
                    SeqMode::RoundTrip,
                    format!("rebalance.s{k}.c{c}"),
                ),
            );
            workers.push(node);
        }
    }
    cluster.sim.run_for(SimDuration::from_millis(100));
    for node in &workers {
        cluster
            .sim
            .with_actor::<SeqWorkload, _>(*node, |w, ctx| w.start(ctx));
    }

    // Phase 1: 30 s without a policy.
    cluster.sim.run_for(SimDuration::from_secs(30));
    let ops_unbalanced: u64 = workers
        .iter()
        .map(|n| cluster.sim.actor::<SeqWorkload>(*n).stats.ops)
        .sum();
    println!(
        "30 s with no policy installed: {} ops ({:.0}/s), exports: {}",
        ops_unbalanced,
        ops_unbalanced as f64 / 30.0,
        cluster.sim.metrics().counter("mds.exports"),
    );

    // Phase 2: publish the sequencer-aware policy the paper's way —
    // durable object first, then the version pointer.
    println!("\npublishing the sequencer-aware policy (durable object + version pointer)...");
    cluster
        .rados(
            ObjectId::new("meta", "mantle_policy_v1"),
            durability::put_blob(mala_mantle::SEQUENCER_AWARE_POLICY.as_bytes().to_vec()),
        )
        .expect("policy object write failed");
    cluster.commit_updates(vec![load_balancing::policy_pointer_update(
        "mantle_policy_v1",
    )]);

    // Phase 3: 60 s with the policy active.
    let before = cluster.sim.now();
    cluster.sim.run_for(SimDuration::from_secs(60));
    let ops_balanced: u64 = workers
        .iter()
        .map(|n| cluster.sim.actor::<SeqWorkload>(*n).stats.ops)
        .sum::<u64>()
        - ops_unbalanced;
    let elapsed = cluster.sim.now().since(before).as_secs_f64();
    println!(
        "60 s with the policy: {} ops ({:.0}/s), exports: {}",
        ops_balanced,
        ops_balanced as f64 / elapsed,
        cluster.sim.metrics().counter("mds.exports"),
    );
    for (k, ino) in inos.iter().enumerate() {
        let auth = cluster.sim.actor::<Mds>(cluster.mds_node(0)).auth_of(*ino);
        println!("  sequencer {k} now authoritative on mds.{auth}");
    }

    // The central cluster log collected everything important.
    println!("\ncentral cluster log (monitor):");
    let mon = cluster.mon();
    for (at, source, line) in cluster.sim.actor::<Monitor>(mon).cluster_log() {
        println!("  [{at}] {source}: {line}");
    }
}

/// Minimal admin client (kept local to the example).
mod mala_bench_admin {
    use std::any::Any;
    use std::collections::HashMap;

    use mala_mds::types::MdsMsg;
    use mala_sim::{Actor, Context, NodeId};

    #[derive(Default)]
    pub struct AdminClient {
        created: HashMap<u64, u64>,
    }

    impl AdminClient {
        pub fn created(&self, reqid: u64) -> u64 {
            self.created[&reqid]
        }
    }

    impl Actor for AdminClient {
        fn on_message(&mut self, _ctx: &mut Context<'_>, _from: NodeId, msg: Box<dyn Any>) {
            if let Ok(msg) = msg.downcast::<MdsMsg>() {
                if let MdsMsg::Created { reqid, result } = *msg {
                    self.created.insert(reqid, result.expect("create failed"));
                }
            }
        }
    }
}
