//! The Data I/O interface as the paper's §2 motivates it: co-designed
//! object interfaces, installed and *upgraded live* against a running
//! cluster — plus the interface census behind Figure 2 / Table 1.
//!
//! The scenario: an application team ships a custom secondary-index class
//! (atomically maintaining a key-value index next to the byte stream —
//! the paper's example of transactional interface composition), then
//! upgrades it in place to add a method, with no daemon restarts and with
//! stale versions rejected everywhere.
//!
//! Run with: `cargo run --example programmable_interfaces`

use mala_rados::class_registry::{census_by_category, growth_series};
use mala_rados::{ObjectId, Op, OpResult, Osd};
use mala_sim::SimDuration;
use malacology::cluster::ClusterBuilder;
use malacology::interfaces::data_io;

const INDEXED_STORE_V1: &str = r#"
-- v1: put() atomically appends a record AND maintains an index entry,
-- exactly the paper's example: "an interface that atomically updates a
-- matrix stored in the bytestream and an index of the matrix stored in
-- the key-value database".
function put(input)
    local parts = split(input, "=")
    if parts[2] == nil then error("EINVAL: want key=value") end
    local off = data_size()
    data_append(parts[2])
    omap_set("idx." .. parts[1], fmt(off) .. ":" .. fmt(#parts[2]))
    return "ok"
end

function get(input)
    local entry = omap_get("idx." .. input)
    if entry == nil then error("ENOENT: no such key") end
    local parts = split(entry, ":")
    return data_read(tonumber(parts[1]), tonumber(parts[2]))
end
"#;

const INDEXED_STORE_V2: &str = r#"
-- v2 adds len() without touching the running cluster.
function put(input)
    local parts = split(input, "=")
    if parts[2] == nil then error("EINVAL: want key=value") end
    local off = data_size()
    data_append(parts[2])
    omap_set("idx." .. parts[1], fmt(off) .. ":" .. fmt(#parts[2]))
    return "ok"
end

function get(input)
    local entry = omap_get("idx." .. input)
    if entry == nil then error("ENOENT: no such key") end
    local parts = split(entry, ":")
    return data_read(tonumber(parts[1]), tonumber(parts[2]))
end

function len(input)
    return fmt(omap_len())
end
"#;

fn main() {
    let mut cluster = ClusterBuilder::new()
        .monitors(3)
        .osds(8)
        .pool("app", 32, 3)
        .build(17);
    let oid = ObjectId::new("app", "records");

    // Install v1 cluster-wide through the Service Metadata interface.
    println!("installing indexed-store v1...");
    cluster.commit_updates(vec![data_io::install_interface(
        "indexed_store",
        INDEXED_STORE_V1,
    )]);
    cluster.sim.run_for(SimDuration::from_secs(1));

    // Use it: transactional put / indexed get.
    for kv in ["alpha=first-record", "beta=second", "gamma=third-and-long"] {
        cluster
            .rados(
                oid.clone(),
                data_io::call("indexed_store", "put", kv.as_bytes().to_vec()),
            )
            .expect("put failed");
    }
    let out = cluster
        .rados(
            oid.clone(),
            data_io::call("indexed_store", "get", b"beta".to_vec()),
        )
        .expect("get failed");
    if let OpResult::CallOut(v) = &out[0] {
        println!("get(beta) = {:?}", String::from_utf8_lossy(v));
    }

    // A transaction mixing native ops and a class call is atomic: the
    // failing comparison rolls back the class call's mutations too.
    let err = cluster.rados(
        oid.clone(),
        vec![
            Op::Call {
                class: "indexed_store".into(),
                method: "put".into(),
                input: b"doomed=will-roll-back".to_vec(),
            },
            Op::OmapCmpXchg {
                key: "fence".into(),
                expect: Some(b"never-set".to_vec()),
                value: b"x".to_vec(),
            },
        ],
    );
    assert!(err.is_err());
    let gone = cluster.rados(
        oid.clone(),
        data_io::call("indexed_store", "get", b"doomed".to_vec()),
    );
    assert!(gone.is_err(), "rolled-back put must not be visible");
    println!("atomicity: failing transaction rolled the indexed put back");

    // v1 has no len(): the method simply does not resolve.
    let before = cluster.rados(
        oid.clone(),
        data_io::call("indexed_store", "len", Vec::new()),
    );
    println!(
        "len() under v1 -> {:?}",
        before.err().map(|e| e.to_string())
    );

    // Live upgrade to v2.
    println!("\nupgrading to v2 (adds len) with the cluster running...");
    cluster.commit_updates(vec![data_io::install_interface(
        "indexed_store",
        INDEXED_STORE_V2,
    )]);
    cluster.sim.run_for(SimDuration::from_secs(1));
    let out = cluster
        .rados(oid, data_io::call("indexed_store", "len", Vec::new()))
        .expect("len failed after upgrade");
    if let OpResult::CallOut(v) = &out[0] {
        println!(
            "len() under v2 = {} indexed keys",
            String::from_utf8_lossy(v)
        );
    }
    // Every OSD converged on the same version.
    let versions: Vec<u64> = (0..8)
        .map(|i| {
            cluster
                .sim
                .actor::<Osd>(cluster.osd_node(i))
                .registry()
                .scripted_version("indexed_store")
                .unwrap_or(0)
        })
        .collect();
    println!("per-OSD installed versions: {versions:?}");
    assert!(versions.windows(2).all(|w| w[0] == w[1]));

    // The census that motivates all of this (Fig. 2 / Table 1).
    println!("\nwhy programmability is a feature, not a hack (paper §2):");
    for (year, classes, methods) in growth_series() {
        println!("  {year}: {classes:>2} co-designed classes, {methods:>2} methods");
    }
    for (cat, methods) in census_by_category() {
        println!(
            "  {:<22} {:>3} methods — e.g. {}",
            cat.name(),
            methods,
            cat.example()
        );
    }
}
