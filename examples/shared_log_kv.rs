//! A replicated key-value store materialized from the ZLog shared log —
//! the Tango/Hyder pattern the paper cites as the motivation for
//! high-performance shared logs (§5.2): "The shared-log is a powerful
//! abstraction used to construct distributed systems".
//!
//! Two independent clients append `put`/`del` commands to one log; each
//! client *materializes* its own [`KvStore`] by replaying the log through
//! a pipelined tailing cursor (vectored `read_batch` per stripe, bounded
//! read-ahead), and both converge to identical state because the
//! sequencer imposes one total order. The read-side scale-out machinery
//! then keeps replicas cheap forever:
//!
//! * a **checkpoint** persists `(position, snapshot)` on the log's
//!   checkpoint object, and
//! * a **trim** reclaims the checkpointed prefix, so
//! * a brand-new replica restores the snapshot and replays only the
//!   suffix — the log never replays from zero.
//!
//! A crash of the metadata server mid-run exercises the CORFU recovery
//! protocol (seal + tail restore) without losing a single committed
//! command. Transient op failures ride a typed retry/backoff policy
//! instead of killing the run.
//!
//! Run with: `cargo run --example shared_log_kv`

use mala_mds::server::Mds;
use mala_mds::{MdsConfig, NoBalancer};
use mala_sim::{Context, NodeId, Sim, SimDuration};
use mala_zlog::log::{run_op, ZlogOut};
use mala_zlog::{
    encode_cmd, zlog_interface_update, AppendResult, KvCmd, KvStore, ReadConfig, ZlogClient,
    ZlogConfig,
};
use malacology::cluster::ClusterBuilder;

/// How a zlog op failure should be treated by the driver.
#[derive(Debug)]
enum OpError {
    /// Worth retrying after a backoff: timeouts, remaps, lost replies.
    Transient(String),
    /// Protocol rejection that retrying cannot fix.
    Fatal(String),
}

fn classify(msg: String) -> OpError {
    // Storage-class rejections are deterministic verdicts; everything
    // else (op watchdog expiry, sealed-epoch races, backfill bounces)
    // resolves with time.
    if msg.contains("rejected") || msg.contains("malformed") {
        OpError::Fatal(msg)
    } else {
        OpError::Transient(msg)
    }
}

/// Retry policy: capped-exponential backoff over simulated time.
struct Retry {
    attempts: u32,
    base: SimDuration,
}

impl Default for Retry {
    fn default() -> Self {
        Retry {
            attempts: 5,
            base: SimDuration::from_millis(50),
        }
    }
}

/// Drives `f` to completion, retrying transient failures with backoff.
/// Panics only on a fatal rejection or after the policy is exhausted.
fn with_retry(
    sim: &mut Sim,
    node: NodeId,
    what: &str,
    retry: &Retry,
    mut f: impl FnMut(&mut ZlogClient, &mut Context<'_>) -> u64,
) -> ZlogOut {
    let mut delay = retry.base;
    for attempt in 1..=retry.attempts {
        match run_op(sim, node, SimDuration::from_secs(10), &mut f) {
            AppendResult::Ok(out) => return out,
            AppendResult::Err(msg) => match classify(msg) {
                OpError::Fatal(msg) => panic!("{what}: fatal rejection: {msg}"),
                OpError::Transient(msg) => {
                    println!("  {what}: transient failure (attempt {attempt}): {msg}");
                    sim.run_for(delay);
                    delay = SimDuration(delay.0.saturating_mul(2)).min(SimDuration::from_secs(2));
                }
            },
        }
    }
    panic!("{what}: still failing after {} attempts", retry.attempts);
}

fn append_cmd(sim: &mut Sim, node: NodeId, retry: &Retry, cmd: &KvCmd) -> u64 {
    let bytes = encode_cmd(cmd);
    match with_retry(sim, node, "append", retry, move |c, ctx| {
        c.append(ctx, bytes.clone())
    }) {
        ZlogOut::Pos(pos) => pos,
        other => panic!("append resolved oddly: {other:?}"),
    }
}

/// Materializes a replica by tailing the log from its latest checkpoint:
/// snapshot restore plus a vectored, pipelined suffix replay. Returns the
/// store and how many positions were actually replayed.
fn materialize(sim: &mut Sim, node: NodeId, retry: &Retry) -> (KvStore, u64) {
    let ckpt = match with_retry(sim, node, "checkpoint_read", retry, |c, ctx| {
        c.checkpoint_read(ctx)
    }) {
        ZlogOut::Checkpoint(c) => c,
        other => panic!("checkpoint_read resolved oddly: {other:?}"),
    };
    let mut store = match &ckpt {
        Some((pos, blob)) => KvStore::restore(*pos, blob).expect("snapshot decodes"),
        None => KvStore::new(),
    };
    let cursor = sim.with_actor::<ZlogClient, _>(node, |c, ctx| c.tail_cursor(ctx));
    let mut replayed = 0u64;
    loop {
        let batch = match with_retry(sim, node, "cursor batch", retry, move |c, ctx| {
            c.cursor_next_batch(ctx, cursor, 16)
        }) {
            ZlogOut::CursorBatch(batch) => batch,
            other => panic!("cursor resolved oddly: {other:?}"),
        };
        if batch.is_empty() {
            return (store, replayed);
        }
        for (pos, outcome) in &batch {
            store.apply(*pos, outcome).expect("in-order replay");
            replayed += 1;
        }
    }
}

fn main() {
    let mut cluster = ClusterBuilder::new()
        .monitors(1)
        .osds(4)
        .mds_ranks(1)
        .pool("kv", 32, 2)
        .build(7);
    cluster.commit_updates(vec![zlog_interface_update()]);

    let cfg = |cluster: &malacology::Cluster| ZlogConfig {
        name: "kvlog".to_string(),
        pool: "kv".to_string(),
        stripe_width: 4,
        mds_nodes: cluster.mds_nodes(),
        home_rank: 0,
        monitor: cluster.mon(),
    };
    let read_cfg = ReadConfig {
        readahead: 16,
        max_inflight: 4,
    };
    let alice = cluster.alloc_node();
    let a_cfg = cfg(&cluster);
    cluster
        .sim
        .add_node(alice, ZlogClient::with_read_config(a_cfg, read_cfg.clone()));
    let bob = cluster.alloc_node();
    let b_cfg = cfg(&cluster);
    cluster
        .sim
        .add_node(bob, ZlogClient::with_read_config(b_cfg, read_cfg));
    cluster.sim.run_for(SimDuration::from_secs(1));
    run_op(
        &mut cluster.sim,
        alice,
        SimDuration::from_secs(10),
        |c, ctx| c.setup(ctx),
    );
    let retry = Retry::default();

    // Interleaved writers: last-writer-wins is decided by log order, i.e.
    // by the sequencer, not by wall-clock races.
    println!("two clients appending interleaved commands...");
    for (node, cmd) in [
        (alice, KvCmd::put("owner", "alice")),
        (bob, KvCmd::put("owner", "bob")),
        (alice, KvCmd::put("color", "green")),
        (bob, KvCmd::put("color", "blue")),
        (alice, KvCmd::put("count", "1")),
        (bob, KvCmd::put("count", "2")),
        (alice, KvCmd::del("color")),
    ] {
        append_cmd(&mut cluster.sim, node, &retry, &cmd);
    }

    let (view_a, replayed_a) = materialize(&mut cluster.sim, alice, &retry);
    let (view_b, _) = materialize(&mut cluster.sim, bob, &retry);
    assert_eq!(view_a, view_b, "replicas diverged");
    println!(
        "both replicas materialized identically ({replayed_a} entries replayed): {:?}",
        view_a.map()
    );

    // Checkpoint Alice's state and trim the prefix: from here on no
    // replica ever replays those positions again.
    let (pos, blob) = (view_a.applied(), view_a.snapshot());
    println!("\ncheckpointing at {pos} and trimming the prefix...");
    with_retry(&mut cluster.sim, alice, "checkpoint", &retry, {
        move |c, ctx| c.checkpoint(ctx, pos, blob.clone())
    });
    with_retry(&mut cluster.sim, alice, "trim_to", &retry, move |c, ctx| {
        c.trim_to(ctx, pos)
    });

    // Crash the MDS (losing the volatile sequencer tail), recover via the
    // CORFU seal protocol, and keep going.
    println!("crashing the metadata server holding the sequencer...");
    let mds0 = cluster.mds_node(0);
    let mon = cluster.mon();
    cluster.sim.crash(mds0);
    cluster.sim.restart(
        mds0,
        Mds::new(0, mon, MdsConfig::default(), Box::new(NoBalancer)),
    );
    cluster.sim.run_for(SimDuration::from_secs(2));
    run_op(
        &mut cluster.sim,
        bob,
        SimDuration::from_secs(10),
        |c, ctx| c.setup(ctx),
    );
    let ZlogOut::Recovered {
        epoch,
        tail: restored,
    } = with_retry(&mut cluster.sim, bob, "recover", &retry, |c, ctx| {
        c.recover(ctx)
    })
    else {
        panic!("recovery resolved oddly");
    };
    println!("recovered: epoch {epoch}, sequencer restarted at {restored}");
    assert_eq!(restored, pos, "recovery must find the true tail");

    let next = append_cmd(&mut cluster.sim, bob, &retry, &KvCmd::put("count", "3"));
    assert_eq!(next, pos, "no committed position may be reused");

    // A brand-new replica restores the snapshot and replays only the
    // post-checkpoint suffix — recovery cost is flat in total log length.
    let (view, replayed) = materialize(&mut cluster.sim, alice, &retry);
    println!(
        "post-recovery replica replayed {replayed} of {} total entries: {:?}",
        view.applied(),
        view.map()
    );
    assert_eq!(view.get("count"), Some("3"));
    assert_eq!(view.get("color"), None, "deleted key resurfaced");
    assert!(
        replayed < view.applied(),
        "checkpoint restore must skip the trimmed prefix"
    );
    println!("\nshared-log kv store survived sequencer failure with zero lost writes");
}
