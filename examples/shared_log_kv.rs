//! A replicated key-value store materialized from the ZLog shared log —
//! the Tango/Hyder pattern the paper cites as the motivation for
//! high-performance shared logs (§5.2): "The shared-log is a powerful
//! abstraction used to construct distributed systems".
//!
//! Two independent clients append `SET key=value` commands to one log;
//! each client *materializes* its own map by replaying the log, and both
//! converge to identical state because the sequencer imposes one total
//! order. A crash of the metadata server mid-run exercises the CORFU
//! recovery protocol (seal + tail restore) without losing a single
//! committed command.
//!
//! Run with: `cargo run --example shared_log_kv`

use std::collections::BTreeMap;

use mala_mds::server::Mds;
use mala_mds::{MdsConfig, NoBalancer};
use mala_sim::{NodeId, Sim, SimDuration};
use mala_zlog::log::{run_op, ZlogOut};
use mala_zlog::{zlog_interface_update, AppendResult, ReadOutcome, ZlogClient, ZlogConfig};
use malacology::cluster::ClusterBuilder;

/// Replays the log from position 0 into a map.
fn materialize(sim: &mut Sim, node: NodeId, until: u64) -> BTreeMap<String, String> {
    let mut map = BTreeMap::new();
    for pos in 0..until {
        let res = run_op(sim, node, SimDuration::from_secs(10), move |c, ctx| {
            c.read(ctx, pos)
        });
        let AppendResult::Ok(ZlogOut::Read(outcome)) = res else {
            panic!("read {pos} failed: {res:?}");
        };
        match outcome {
            ReadOutcome::Data(bytes) => {
                let cmd = String::from_utf8_lossy(&bytes).into_owned();
                if let Some((key, value)) = cmd.split_once('=') {
                    map.insert(key.to_string(), value.to_string());
                }
            }
            // Junk-filled or trimmed positions carry no command.
            ReadOutcome::Filled | ReadOutcome::Trimmed => {}
            ReadOutcome::NotWritten => panic!("hole at {pos} below the tail"),
        }
    }
    map
}

fn append(sim: &mut Sim, node: NodeId, cmd: &str) -> u64 {
    let bytes = cmd.as_bytes().to_vec();
    match run_op(sim, node, SimDuration::from_secs(10), move |c, ctx| {
        c.append(ctx, bytes)
    }) {
        AppendResult::Ok(ZlogOut::Pos(pos)) => pos,
        other => panic!("append failed: {other:?}"),
    }
}

fn main() {
    let mut cluster = ClusterBuilder::new()
        .monitors(1)
        .osds(4)
        .mds_ranks(1)
        .pool("kv", 32, 2)
        .build(7);
    cluster.commit_updates(vec![zlog_interface_update()]);

    let cfg = |cluster: &malacology::Cluster| ZlogConfig {
        name: "kvlog".to_string(),
        pool: "kv".to_string(),
        stripe_width: 4,
        mds_nodes: cluster.mds_nodes(),
        home_rank: 0,
        monitor: cluster.mon(),
    };
    let alice = cluster.alloc_node();
    let a_cfg = cfg(&cluster);
    cluster.sim.add_node(alice, ZlogClient::new(a_cfg));
    let bob = cluster.alloc_node();
    let b_cfg = cfg(&cluster);
    cluster.sim.add_node(bob, ZlogClient::new(b_cfg));
    cluster.sim.run_for(SimDuration::from_secs(1));
    run_op(
        &mut cluster.sim,
        alice,
        SimDuration::from_secs(10),
        |c, ctx| c.setup(ctx),
    );

    // Interleaved writers: last-writer-wins is decided by log order, i.e.
    // by the sequencer, not by wall-clock races.
    println!("two clients appending interleaved SET commands...");
    append(&mut cluster.sim, alice, "owner=alice");
    append(&mut cluster.sim, bob, "owner=bob");
    append(&mut cluster.sim, alice, "color=green");
    append(&mut cluster.sim, bob, "color=blue");
    append(&mut cluster.sim, alice, "count=1");
    let tail = append(&mut cluster.sim, bob, "count=2") + 1;

    let view_a = materialize(&mut cluster.sim, alice, tail);
    let view_b = materialize(&mut cluster.sim, bob, tail);
    assert_eq!(view_a, view_b, "replicas diverged");
    println!("both replicas materialized identically: {view_a:?}");

    // Crash the MDS (losing the volatile sequencer tail), recover via the
    // CORFU seal protocol, and keep going.
    println!("\ncrashing the metadata server holding the sequencer...");
    let mds0 = cluster.mds_node(0);
    let mon = cluster.mon();
    cluster.sim.crash(mds0);
    cluster.sim.restart(
        mds0,
        Mds::new(0, mon, MdsConfig::default(), Box::new(NoBalancer)),
    );
    cluster.sim.run_for(SimDuration::from_secs(2));
    run_op(
        &mut cluster.sim,
        bob,
        SimDuration::from_secs(10),
        |c, ctx| c.setup(ctx),
    );
    let res = run_op(
        &mut cluster.sim,
        bob,
        SimDuration::from_secs(20),
        |c, ctx| c.recover(ctx),
    );
    let AppendResult::Ok(ZlogOut::Recovered {
        epoch,
        tail: restored,
    }) = res
    else {
        panic!("recovery failed: {res:?}");
    };
    println!("recovered: epoch {epoch}, sequencer restarted at {restored}");
    assert_eq!(restored, tail, "recovery must find the true tail");

    let pos = append(&mut cluster.sim, bob, "count=3");
    assert_eq!(pos, tail, "no committed position may be reused");
    let view = materialize(&mut cluster.sim, alice, pos + 1);
    println!("post-recovery state: {view:?}");
    assert_eq!(view.get("count").map(String::as_str), Some("3"));
    println!("\nshared-log kv store survived sequencer failure with zero lost writes");
}
