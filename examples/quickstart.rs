//! Quickstart: bring up a simulated Malacology cluster, touch each of the
//! programmable-storage interfaces once, and append to a ZLog.
//!
//! Run with: `cargo run --example quickstart`

use std::collections::HashMap;

use mala_rados::{ObjectId, Op, OpResult};
use mala_sim::SimDuration;
use mala_zlog::log::{run_op, ZlogOut};
use mala_zlog::{zlog_interface_update, AppendResult, ReadOutcome, ZlogClient, ZlogConfig};
use malacology::cluster::ClusterBuilder;
use malacology::interfaces::{data_io, durability};

fn main() {
    // 1. A cluster: 3 monitors (Paxos quorum), 6 OSDs, 1 MDS rank.
    let mut cluster = ClusterBuilder::new()
        .monitors(3)
        .osds(6)
        .mds_ranks(1)
        .pool("data", 32, 3)
        .build(42);
    println!("cluster up: ready = {}", cluster.ready());

    // 2. Durability interface: store and fetch a blob through RADOS.
    let oid = ObjectId::new("data", "hello");
    cluster
        .rados(
            oid.clone(),
            durability::put_blob(b"hello malacology".to_vec()),
        )
        .expect("write failed");
    let out = cluster
        .rados(oid, durability::get_blob())
        .expect("read failed");
    if let OpResult::Data(data) = &out[0] {
        println!(
            "durability: stored and read back {:?}",
            String::from_utf8_lossy(data)
        );
    }

    // 3. Data I/O interface: hot-install a scripted object class and call
    //    it — no daemon restarts anywhere.
    cluster.commit_updates(vec![data_io::install_interface(
        "greeter",
        r#"
        function greet(input)
            return "hello, " .. input .. "!"
        end
        "#,
    )]);
    cluster.sim.run_for(SimDuration::from_secs(1));
    let out = cluster
        .rados(
            ObjectId::new("data", "greeting"),
            data_io::call("greeter", "greet", b"world".to_vec()),
        )
        .expect("class call failed");
    if let OpResult::CallOut(reply) = &out[0] {
        println!(
            "data i/o: scripted class replied {:?}",
            String::from_utf8_lossy(reply)
        );
    }

    // 4. ZLog: the CORFU shared log built from the File Type, Shared
    //    Resource, Service Metadata, and Data I/O interfaces together.
    cluster.commit_updates(vec![zlog_interface_update()]);
    let zlog_node = cluster.alloc_node();
    let mds_nodes: HashMap<u32, _> = cluster.mds_nodes();
    let monitor = cluster.mon();
    cluster.sim.add_node(
        zlog_node,
        ZlogClient::new(ZlogConfig {
            name: "demo".to_string(),
            pool: "data".to_string(),
            stripe_width: 4,
            mds_nodes,
            home_rank: 0,
            monitor,
        }),
    );
    cluster.sim.run_for(SimDuration::from_secs(1));
    run_op(
        &mut cluster.sim,
        zlog_node,
        SimDuration::from_secs(10),
        |c, ctx| c.setup(ctx),
    );
    for i in 0..5 {
        let msg = format!("entry-{i}");
        let res = run_op(&mut cluster.sim, zlog_node, SimDuration::from_secs(10), {
            let msg = msg.clone();
            move |c, ctx| c.append(ctx, msg.into_bytes())
        });
        if let AppendResult::Ok(ZlogOut::Pos(pos)) = res {
            println!("zlog: appended {msg:?} at position {pos}");
        }
    }
    let res = run_op(
        &mut cluster.sim,
        zlog_node,
        SimDuration::from_secs(10),
        |c, ctx| c.read(ctx, 2),
    );
    if let AppendResult::Ok(ZlogOut::Read(ReadOutcome::Data(data))) = res {
        println!(
            "zlog: position 2 holds {:?}",
            String::from_utf8_lossy(&data)
        );
    }

    // 5. One native class for good measure (Ceph-style static interface).
    let out = cluster
        .rados(
            ObjectId::new("data", "counter"),
            vec![
                Op::Create { exclusive: false },
                Op::Call {
                    class: "refcount".into(),
                    method: "get".into(),
                    input: Vec::new(),
                },
            ],
        )
        .expect("refcount failed");
    if let OpResult::CallOut(n) = &out[1] {
        println!("native class: refcount now {}", String::from_utf8_lossy(n));
    }
    println!(
        "\nquickstart complete at simulated time {}",
        cluster.sim.now()
    );
}
