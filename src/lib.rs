//! Top-level crate of the Malacology reproduction workspace: re-exports
//! for the integration tests and examples under `tests/` and `examples/`.
//!
//! The substance lives in the member crates; see `DESIGN.md` for the map.

pub use mala_consensus as consensus;
pub use mala_dsl as dsl;
pub use mala_mantle as mantle;
pub use mala_mds as mds;
pub use mala_rados as rados;
pub use mala_sim as sim;
pub use mala_zlog as zlog;
pub use malacology as core;
